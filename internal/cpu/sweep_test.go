package cpu

import (
	"testing"

	"valuespec/internal/core"
	"valuespec/internal/isa"
	"valuespec/internal/trace"
)

// newTestPipeline returns an empty pipeline for white-box state-machine
// tests of the sweep logic.
func newTestPipeline(t *testing.T) *Pipeline {
	t.Helper()
	spec := &SpecOptions{
		Enabled:    true,
		Model:      core.Great(),
		Predictor:  &scriptedPredictor{preds: map[int]int64{}},
		Confidence: &scriptedConfidence{conf: map[int]bool{}},
	}
	p, err := New(flatMemConfig(Config4x24()), spec, &trace.SliceSource{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// plant installs an entry at ring slot idx with the given age, registering
// the slot mirrors the way dispatch would. Tests that mutate the entry's
// broadcast header afterwards must republish it with p.pubOut(e).
func plant(p *Pipeline, idx int, age int64) *entry {
	e := &p.entries[idx]
	e.reset()
	e.used = true
	e.idx = idx
	e.age = age
	e.rec = trace.Record{Instr: isa.Instruction{Op: isa.ADD, Dst: 1}}
	e.cls = isa.ClassALU
	p.slotAge[idx] = age
	p.slotCls[idx] = uint8(e.cls)
	setBit(p.occBits, idx)
	p.pubOut(e)
	return e
}

func TestSyncOperandCapturesFromInvalid(t *testing.T) {
	p := newTestPipeline(t)
	prod := plant(p, 0, 10)
	prod.outState = core.StatePredicted
	prod.outCorrect = true
	prod.outReady = 3
	p.pubOut(prod)

	o := &operand{inWindow: true, prodIdx: 0, prodAge: 10, state: core.StateInvalid, validAt: never, ready: never}
	p.syncOperand(o)
	if o.state != core.StatePredicted || !o.correct || o.ready != 3 {
		t.Errorf("capture failed: %+v", o)
	}
	if !o.everSpec {
		t.Error("everSpec not set on a predicted capture")
	}
}

func TestSyncOperandKeepsCorrectCapturedValue(t *testing.T) {
	// A held correct value must not be displaced when the producer
	// broadcasts something wrong (a re-execution with still-wrong inputs).
	p := newTestPipeline(t)
	prod := plant(p, 0, 10)
	prod.outState = core.StateSpeculative
	prod.outCorrect = false
	prod.outReady = 9
	p.pubOut(prod)

	o := &operand{inWindow: true, prodIdx: 0, prodAge: 10,
		state: core.StatePredicted, correct: true, ready: 2, validAt: never}
	p.syncOperand(o)
	if !o.correct || o.ready != 2 {
		t.Errorf("correct captured value displaced: %+v", o)
	}
}

func TestSyncOperandUpgradesToValid(t *testing.T) {
	p := newTestPipeline(t)
	prod := plant(p, 0, 10)
	prod.outState = core.StateValid
	prod.outCorrect = true
	prod.outReady = 4
	prod.validAt = 6
	p.pubOut(prod)

	o := &operand{inWindow: true, prodIdx: 0, prodAge: 10,
		state: core.StatePredicted, correct: true, ready: 2, validAt: never}
	p.syncOperand(o)
	if o.state != core.StateValid || o.validAt != 6 {
		t.Errorf("upgrade failed: %+v", o)
	}
	if o.ready != 2 {
		t.Error("upgrade must not delay the captured value's readiness")
	}
}

func TestSyncOperandReplacesWrongValue(t *testing.T) {
	p := newTestPipeline(t)
	prod := plant(p, 0, 10)
	prod.outState = core.StateValid
	prod.outCorrect = true
	prod.outReady = 8
	prod.validAt = 8
	p.pubOut(prod)

	o := &operand{inWindow: true, prodIdx: 0, prodAge: 10,
		state: core.StatePredicted, correct: false, ready: 2, validAt: never}
	p.syncOperand(o)
	if !o.correct || o.state != core.StateValid || o.ready != 8 {
		t.Errorf("wrong value not replaced: %+v", o)
	}
}

func TestSyncOperandIgnoresReusedSlot(t *testing.T) {
	p := newTestPipeline(t)
	prod := plant(p, 0, 99) // different age than the operand expects
	prod.outState = core.StateSpeculative
	prod.outCorrect = false
	p.pubOut(prod)

	o := &operand{inWindow: true, prodIdx: 0, prodAge: 10,
		state: core.StateValid, correct: true, ready: 2, validAt: 2}
	p.syncOperand(o)
	if o.state != core.StateValid || !o.correct {
		t.Errorf("slot reuse corrupted a final operand: %+v", o)
	}
}

func TestRefreshOutputGatesOnEquality(t *testing.T) {
	// A speculated prediction with clean execution and valid inputs must
	// not validate before its equality outcome is actionable.
	p := newTestPipeline(t)
	e := plant(p, 0, 1)
	e.vpMade, e.vpUsed, e.vpCorrect = true, true, true
	e.doneExec, e.execClean = true, true
	e.doneCycle = 5
	e.eqReady = 8 // actionable at 8
	p.head, p.count = 0, 1

	p.refreshOutput(e, 7, 0)
	if e.validAt != never {
		t.Fatalf("validated at cycle 7 before equality (eqReady 8)")
	}
	e.eqDone = true
	p.refreshOutput(e, 8, 0)
	if e.validAt != 8 {
		t.Fatalf("validAt = %d, want 8", e.validAt)
	}
	if e.retireAt != 8+int64(p.model.Lat.VerifyFreeRetire) {
		t.Errorf("retireAt = %d", e.retireAt)
	}
}

func TestRefreshOutputWaitsForOperandValidity(t *testing.T) {
	p := newTestPipeline(t)
	prod := plant(p, 0, 1)
	prod.outState = core.StateSpeculative
	cons := plant(p, 1, 2)
	cons.doneExec, cons.execClean = true, true
	cons.doneCycle = 4
	cons.nsrc = 1
	cons.src[0] = operand{inWindow: true, prodIdx: 0, prodAge: 1,
		state: core.StateSpeculative, correct: true, ready: 3, validAt: never, everSpec: true}
	p.head, p.count = 0, 2

	p.refreshOutput(cons, 9, 1)
	if cons.validAt != never {
		t.Fatal("validated with a speculative operand")
	}
	cons.src[0].state = core.StateValid
	cons.src[0].validAt = 9
	p.refreshOutput(cons, 9, 1)
	if cons.validAt != 9 {
		t.Fatalf("validAt = %d, want 9", cons.validAt)
	}
}

func TestNullifyRestoresPredictionView(t *testing.T) {
	p := newTestPipeline(t)
	e := plant(p, 0, 1)
	e.vpUsed, e.vpCorrect = true, true
	e.dispatchCycle = 2
	e.doneExec = true
	e.outState = core.StateSpeculative
	e.nullify(10, 3)
	if e.outState != core.StatePredicted || e.outReady != 2 {
		t.Errorf("live prediction not re-exposed: state=%v ready=%d", e.outState, e.outReady)
	}
	if e.earliestIssue != 13 {
		t.Errorf("earliestIssue = %d, want 13", e.earliestIssue)
	}

	e.vpDead = true
	e.nullify(12, 3)
	if e.outState != core.StateInvalid {
		t.Errorf("dead prediction re-exposed: %v", e.outState)
	}
}

func TestOperandAvailability(t *testing.T) {
	o := operand{state: core.StateSpeculative, ready: 5}
	if o.available(4, true) {
		t.Error("available before ready cycle")
	}
	if !o.available(5, true) {
		t.Error("not available at ready cycle")
	}
	if o.available(5, false) {
		t.Error("speculative value available without forwarding")
	}
	o.state = core.StatePredicted
	if !o.available(5, false) {
		t.Error("predicted value must be available even without forwarding")
	}
	o.state = core.StateInvalid
	if o.available(10, true) {
		t.Error("invalid operand available")
	}
}

package cpu

import (
	"testing"

	"valuespec/internal/confidence"
	"valuespec/internal/core"
	"valuespec/internal/obs"
	"valuespec/internal/trace"
	"valuespec/internal/vpred"
)

// cyclicSource replays a recorded stream forever, renumbering Seq so the
// concatenation is one coherent endless trace. It keeps the window full for
// as many cycles as a steady-state benchmark wants to run.
type cyclicSource struct {
	recs []trace.Record
	pos  int
	seq  int64
}

func (s *cyclicSource) Next() (trace.Record, bool) {
	r := s.recs[s.pos]
	s.pos++
	if s.pos == len(s.recs) {
		s.pos = 0
	}
	r.Seq = s.seq
	s.seq++
	return r, true
}

// BenchmarkPipelineSteadyState measures one simulated cycle of a warmed-up
// pipeline under the full Great model. The warmup drives every pool and ring
// to its high-water mark (wheel slots, wave sets, ready queue, replay deque,
// consumer lists); after it, the hot loop must run at 0 allocs/op — that
// budget is pinned in BENCH_BASELINE.json and enforced by cmd/benchcheck.
//
// The pipeline runs with a Metrics collector and a Telemetry interval
// sampler attached and an obs SharedRegistry adapter standing by, the
// configuration a live-served sweep uses: the per-cycle histogram hooks and
// the telemetry event-site latency observes are on the measured path, while
// neither sampling interval ever elapses and the shared merge happens only
// after the timed loop. The 0 allocs/op budget therefore also pins
// "attached-but-idle" live observability as allocation-free.
func BenchmarkPipelineSteadyState(b *testing.B) {
	recs := benchWakeupRecs(b, 20000)
	spec := &SpecOptions{
		Enabled:    true,
		Model:      core.Great(),
		Predictor:  vpred.NewFCM(vpred.FCMConfig{HistoryBits: 10, PredictionBits: 10, HistoryDepth: 4}),
		Confidence: confidence.NewResetting(10, 2),
	}
	p, err := New(flatMemConfig(Config8x48()), spec, &cyclicSource{recs: recs})
	if err != nil {
		b.Fatal(err)
	}
	shared := obs.NewSharedRegistry()
	m := NewMetrics(1<<62, 0) // idle: the sampling interval never elapses
	p.SetMetrics(m)
	tl := NewTelemetry(1<<62, 256) // idle too; only event-site observes fire
	p.SetTelemetry(tl)
	for i := 0; i < 50000; i++ {
		p.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.step()
	}
	b.StopTimer()
	shared.Merge(m.Registry) // the adapter a sweep runs at spec completion
	if shared.Snapshot().Histogram(MetricOccupancy).Count() == 0 {
		b.Fatal("idle metrics adapter recorded nothing")
	}
	if tl.VerifyLatency().Count() == 0 {
		b.Fatal("idle telemetry observed no verifications")
	}
	b.ReportMetric(float64(p.stats.Retired)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkIntervalSampler measures one Telemetry interval sample — counter
// deltas, bitset population counts and fourteen TimeSeries appends — on a
// warmed-up pipeline. The sampler runs at Runner.Step boundaries, never in
// the per-cycle loop, so this is the whole marginal cost of a sampling
// boundary; the 0 allocs/op budget pins sampling as allocation-free
// (TimeSeries decimate in place instead of growing).
func BenchmarkIntervalSampler(b *testing.B) {
	recs := benchWakeupRecs(b, 20000)
	spec := &SpecOptions{
		Enabled:    true,
		Model:      core.Great(),
		Predictor:  vpred.NewFCM(vpred.FCMConfig{HistoryBits: 10, PredictionBits: 10, HistoryDepth: 4}),
		Confidence: confidence.NewResetting(10, 2),
	}
	p, err := New(flatMemConfig(Config8x48()), spec, &cyclicSource{recs: recs})
	if err != nil {
		b.Fatal(err)
	}
	const interval = 64
	tl := NewTelemetry(interval, 512)
	p.SetTelemetry(tl)
	for i := 0; i < 50000; i++ {
		p.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rewind the boundary bookkeeping so every iteration takes a full
		// sample without re-simulating the interval.
		tl.prevCycle = p.cycle - interval
		tl.sample(p)
	}
	b.StopTimer()
	if tl.series[tsOccupancy].Appended() < int64(b.N) {
		b.Fatal("sampler skipped samples")
	}
}

// BenchmarkReplayRequeue compares the replay-queue representations on the
// squash pattern: n records pushed onto the front one at a time (a complete
// invalidation squashing the window, repeatedly), then drained. The ring
// deque is O(1) per operation; the slice representation the deque replaced
// re-allocated and copied the whole queue per prepend, so its per-op cost
// grows linearly with queue depth (quadratic per squash burst) — visible
// directly in the ns/op spread across sizes.
func BenchmarkReplayRequeue(b *testing.B) {
	for _, n := range []int{1024, 8192} {
		rec := trace.Record{}
		b.Run(sizeName("deque", n), func(b *testing.B) {
			b.ReportAllocs()
			var d recDeque
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					d.pushFront(rec)
				}
				for d.len() > 0 {
					d.popFront()
				}
			}
		})
		b.Run(sizeName("prepend", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var q []trace.Record
				for j := 0; j < n; j++ {
					q = append([]trace.Record{rec}, q...)
				}
				for len(q) > 0 {
					q = q[1:]
				}
			}
		})
	}
}

func sizeName(kind string, n int) string {
	switch n {
	case 1024:
		return kind + "-1k"
	case 8192:
		return kind + "-8k"
	}
	return kind
}

// BenchmarkReadyQueueWide stresses selection on a window far wider than the
// paper's largest configuration (16-wide, 512 entries), where the per-cycle
// full-window scan is most expensive. "bitset" is the shipped bitset
// occupancy/ready words; "queue" is the previous tombstoned ready queue;
// "scan" is the reference full-window scan. benchcheck gates all three side
// by side.
func BenchmarkReadyQueueWide(b *testing.B) {
	recs := benchWakeupRecs(b, 20000)
	cfg := flatMemConfig(Config{IssueWidth: 16, WindowSize: 512})
	for _, mode := range wakeupModes {
		b.Run(mode.name, func(b *testing.B) {
			var retired int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spec := &SpecOptions{
					Enabled:    true,
					Model:      core.Great(),
					Predictor:  vpred.NewFCM(vpred.FCMConfig{HistoryBits: 10, PredictionBits: 10, HistoryDepth: 4}),
					Confidence: confidence.NewResetting(10, 2),
				}
				p, err := New(cfg, spec, trace.NewMemorySource(recs))
				if err != nil {
					b.Fatal(err)
				}
				p.queueWakeup, p.scanWakeup = mode.queue, mode.scan
				st, err := p.Run()
				if err != nil {
					b.Fatal(err)
				}
				retired += st.Retired
			}
			b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkBitsetSelect isolates the per-cycle cost of the wakeup/selection
// and sweep structures on a warmed-up wide window (16-wide, 512 entries):
// the same steady-state loop as BenchmarkPipelineSteadyState, run once per
// wakeup mode so the bitset words, the tombstoned queue and the full scan
// are compared cycle for cycle on identical machine state.
func BenchmarkBitsetSelect(b *testing.B) {
	recs := benchWakeupRecs(b, 20000)
	cfg := flatMemConfig(Config{IssueWidth: 16, WindowSize: 512})
	for _, mode := range wakeupModes {
		b.Run(mode.name, func(b *testing.B) {
			spec := &SpecOptions{
				Enabled:    true,
				Model:      core.Great(),
				Predictor:  vpred.NewFCM(vpred.FCMConfig{HistoryBits: 10, PredictionBits: 10, HistoryDepth: 4}),
				Confidence: confidence.NewResetting(10, 2),
			}
			p, err := New(cfg, spec, &cyclicSource{recs: recs})
			if err != nil {
				b.Fatal(err)
			}
			p.queueWakeup, p.scanWakeup = mode.queue, mode.scan
			for i := 0; i < 50000; i++ {
				p.step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.step()
			}
			b.ReportMetric(float64(p.stats.Retired)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

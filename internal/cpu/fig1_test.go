package cpu

import (
	"testing"

	"valuespec/internal/core"
	"valuespec/internal/isa"
	"valuespec/internal/trace"
)

// scriptedPredictor returns fixed predictions per PC; PCs without an entry
// predict zero (which the scripted confidence marks unconfident).
type scriptedPredictor struct{ preds map[int]int64 }

func (s *scriptedPredictor) Lookup(pc int) (int64, uint64)                 { return s.preds[pc], 0 }
func (s *scriptedPredictor) TrainImmediate(pc int, ck uint64, v int64)     {}
func (s *scriptedPredictor) SpeculateHistory(pc int, pred int64)           {}
func (s *scriptedPredictor) TrainDelayed(pc int, ck uint64, pred, v int64) {}
func (s *scriptedPredictor) Reset()                                        {}

// scriptedConfidence is confident exactly for the listed PCs.
type scriptedConfidence struct{ conf map[int]bool }

func (s *scriptedConfidence) Confident(pc int, willBeCorrect bool) bool { return s.conf[pc] }
func (s *scriptedConfidence) Update(pc int, correct bool)               {}
func (s *scriptedConfidence) Reset()                                    {}

// chain3 builds the dynamic records for the paper's Fig. 1 example: three
// single-cycle instructions forming a dependence chain (2 depends on 1, 3
// depends on 2), all in the instruction window from the start.
func chain3() []trace.Record {
	add := func(seq int64, dst, src isa.Reg, srcVal, dstVal int64) trace.Record {
		return trace.Record{
			Seq: seq, PC: int(seq),
			Instr:   isa.Instruction{Op: isa.ADD, Dst: dst, Src1: src, Src2: src},
			NSrc:    2,
			SrcRegs: [2]isa.Reg{src, src},
			SrcVals: [2]int64{srcVal, srcVal},
			DstVal:  dstVal,
			NextPC:  int(seq) + 1,
		}
	}
	return []trace.Record{
		add(0, 1, 10, 1, 2), // r1 = r10 + r10 = 2
		add(1, 2, 1, 2, 4),  // r2 = r1 + r1 = 4
		add(2, 3, 2, 4, 8),  // r3 = r2 + r2 = 8
	}
}

// runChain3 simulates the 3-chain under the given model. If mispredict is
// true the predictions for instructions 1 and 2 are wrong; otherwise they
// are correct. model == nil simulates the base processor.
func runChain3(t *testing.T, model *core.Model, mispredict bool) *Stats {
	t.Helper()
	recs := chain3()
	var spec *SpecOptions
	if model != nil {
		preds := map[int]int64{0: recs[0].DstVal, 1: recs[1].DstVal}
		if mispredict {
			preds[0] = recs[0].DstVal + 100
			preds[1] = recs[1].DstVal + 100
		}
		spec = &SpecOptions{
			Enabled:    true,
			Model:      *model,
			Predictor:  &scriptedPredictor{preds: preds},
			Confidence: &scriptedConfidence{conf: map[int]bool{0: true, 1: true}},
		}
	}
	p, err := New(flatMemConfig(Config4x24()), spec, &trace.SliceSource{Records: recs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Retired != 3 {
		t.Fatalf("retired %d instructions, want 3", st.Retired)
	}
	return st
}

// flatMemConfig removes memory-hierarchy latency (every level one cycle) so
// timing tests observe pure pipeline behavior, as in the paper's Fig. 1
// where the instructions are already in the instruction window.
func flatMemConfig(cfg Config) Config {
	cfg = cfg.Normalize()
	cfg.Mem.L1IHitLat = 1
	cfg.Mem.L1DHitLat = 1
	cfg.Mem.L2HitLat = 1
	cfg.Mem.MemLat = 1
	return cfg
}

// TestFig1CycleCounts pins the exact cycle counts of the paper's Fig. 1
// scenarios under this simulator's timing conventions (dispatch in cycle 0,
// first issue in cycle 1). The base processor needs 5 cycles of activity
// (issue t..retire t+4 in the paper's terms); the models pack progressively
// more work per cycle.
func TestFig1CycleCounts(t *testing.T) {
	models := map[string]core.Model{
		"super": core.Super(),
		"great": core.Great(),
		"good":  core.Good(),
	}

	base := runChain3(t, nil, false).Cycles

	cases := []struct {
		model      string
		mispredict bool
		want       int64
	}{
		{"super", false, 4},
		{"great", false, 4},
		{"good", false, 5},
		{"super", true, 6},
		{"great", true, 7},
		{"good", true, 8},
	}
	if base != 6 {
		t.Errorf("base cycles = %d, want 6", base)
	}
	for _, c := range cases {
		m := models[c.model]
		got := runChain3(t, &m, c.mispredict).Cycles
		t.Logf("%s mispredict=%t: %d cycles (base %d)", c.model, c.mispredict, got, base)
		if got != c.want {
			t.Errorf("%s mispredict=%t: cycles = %d, want %d", c.model, c.mispredict, got, c.want)
		}
	}
}

// TestFig1Orderings checks the paper's qualitative claims independent of the
// exact cycle accounting: with correct predictions every model beats the
// base machine and optimism never hurts; with mispredictions the Super model
// matches the base machine (zero-latency recovery) and each pessimism step
// costs cycles.
func TestFig1Orderings(t *testing.T) {
	base := runChain3(t, nil, false).Cycles
	super, great, good := core.Super(), core.Great(), core.Good()

	sc := runChain3(t, &super, false).Cycles
	grc := runChain3(t, &great, false).Cycles
	gdc := runChain3(t, &good, false).Cycles
	if !(sc <= grc && grc <= gdc && gdc < base) {
		t.Errorf("correct prediction: want super(%d) <= great(%d) <= good(%d) < base(%d)", sc, grc, gdc, base)
	}

	sm := runChain3(t, &super, true).Cycles
	grm := runChain3(t, &great, true).Cycles
	gdm := runChain3(t, &good, true).Cycles
	if sm != base {
		t.Errorf("super with mispredictions = %d cycles, want base %d (zero-latency recovery)", sm, base)
	}
	if !(sm <= grm && grm <= gdm) {
		t.Errorf("mispredict: want super(%d) <= great(%d) <= good(%d)", sm, grm, gdm)
	}
}

// TestBaseEqualsNeverConfidence checks that a value-speculative pipeline
// whose confidence estimator never speculates behaves cycle-identically to
// the base processor (the paper: "when computation does not include
// predicted values, all models have behavior identical to the
// base-processor").
func TestBaseEqualsNeverConfidence(t *testing.T) {
	recs := chain3()
	for _, m := range core.Presets() {
		spec := &SpecOptions{
			Enabled:    true,
			Model:      m,
			Predictor:  &scriptedPredictor{preds: map[int]int64{}},
			Confidence: &scriptedConfidence{conf: map[int]bool{}},
		}
		p, err := New(flatMemConfig(Config4x24()), spec, &trace.SliceSource{Records: recs})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		st, err := p.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if st.Cycles != 6 {
			t.Errorf("model %s without speculation: %d cycles, want base 6", m.Name, st.Cycles)
		}
	}
}

package cpu

import "fmt"

// Runner drives a Pipeline in bounded increments so a caller can interleave
// several simulations — the lockstep sweep executor advances K pipelines a
// chunk of cycles at a time. The termination, cycle-budget and
// no-progress checks are applied per cycle in exactly the order Run's closed
// loop applies them, so a chunked run produces the identical result.
type Runner struct {
	p            *Pipeline
	lastRetired  int64
	lastProgress int64
	done         bool
	err          error
}

// NewRunner returns a resumable driver for p. Drive with Step until it
// reports completion, then read Result. Mixing Step with Run, or creating
// two Runners for one Pipeline, is not supported.
func (p *Pipeline) NewRunner() *Runner { return &Runner{p: p} }

// Step advances the simulation by at most n cycles, returning true once the
// run has finished — the instruction stream drained and the window emptied,
// or the run failed (cycle budget exceeded, no forward progress). Calling
// Step after completion is a no-op returning true.
//
// When a Telemetry sampler is installed, Step splits its increment at the
// sampler's due cycles so interval samples are taken exactly at Step
// boundaries; the per-cycle loop itself never sees the sampler, and with no
// sampler installed the path is unchanged.
func (r *Runner) Step(n int) bool {
	if r.done {
		return true
	}
	t := r.p.telem
	if t == nil {
		return r.stepN(n)
	}
	for n > 0 {
		m := n
		if due := t.nextDue - r.p.cycle; due < int64(m) {
			if due < 1 {
				due = 1
			}
			m = int(due)
		}
		if r.stepN(m) {
			return true
		}
		n -= m
		if r.p.cycle >= t.nextDue {
			t.sample(r.p)
		}
	}
	return false
}

// stepN is the unsampled per-cycle drive loop shared by both Step paths.
func (r *Runner) stepN(n int) bool {
	p := r.p
	for ; n > 0; n-- {
		if p.count == 0 && p.srcDone && p.pending.len() == 0 {
			return r.finish(nil)
		}
		if p.cycle >= p.cfg.MaxCycles {
			return r.finish(fmt.Errorf("cpu: exceeded cycle budget %d", p.cfg.MaxCycles))
		}
		p.step()
		if p.stats.Retired != r.lastRetired {
			r.lastRetired, r.lastProgress = p.stats.Retired, p.cycle
		} else if p.cycle-r.lastProgress > 100000 {
			return r.finish(fmt.Errorf("cpu: no retirement for 100000 cycles at cycle %d (%s)",
				p.cycle, p.dumpHead()))
		}
	}
	return false
}

// finish records the outcome and flushes the observers (the last partial
// metrics interval serializes even on error, matching Run).
func (r *Runner) finish(err error) bool {
	r.done, r.err = true, err
	if p := r.p; p.metrics != nil {
		p.metrics.finish(p)
	}
	if p := r.p; p.telem != nil {
		p.telem.finishRun(p)
	}
	if p := r.p; p.phases != nil {
		p.phases.End()
	}
	return true
}

// Done reports whether the run has finished.
func (r *Runner) Done() bool { return r.done }

// Result returns the accumulated statistics and the run's outcome. Valid
// once Step has returned true.
func (r *Runner) Result() (*Stats, error) { return &r.p.stats, r.err }

package cpu

import "valuespec/internal/trace"

// This file holds the allocation-free data structures of the steady-state
// simulation loop (see docs/PERFORMANCE.md): the timing wheel that replaced
// the cycle-keyed event maps, the window-indexed bitset that replaced the
// per-wave age sets, and the ring-buffer deque that replaced the replay-queue
// slice prepends. All of them reach a high-water capacity during warmup and
// then recycle their storage, so a pipeline in steady state performs no heap
// allocations per cycle.

// ---------------------------------------------------------------------------
// Timing wheel

// wheelNominalSlots is the initial (nominal) horizon of a timing wheel. The
// paper's latency variables are single-digit cycles, so 64 slots cover every
// preset with a single power-of-two ring; models with larger latencies grow
// the wheel on first use (wheel.grow), after which scheduling is
// allocation-free again.
const wheelNominalSlots = 64

// wheel is a calendar queue over future cycles: slot c&mask holds the events
// scheduled for absolute cycle c. The invariant that makes a plain ring
// sufficient is that every schedule targets a cycle less than len(slots)
// ahead of the current one — schedule grows the ring when a longer latency
// shows up — and that take drains slot c&mask during cycle c, so a slot is
// always empty when a future cycle hashes onto it.
//
// Drained slot slices keep their capacity and are reused in place, which is
// what makes steady-state scheduling allocation-free.
type wheel[T any] struct {
	slots [][]T
	when  []int64 // absolute cycle of each non-empty slot (for grow)
	mask  int64

	scheduled int64 // events scheduled over the run
	recycled  int64 // non-empty drains whose slice capacity was reused
	grows     int64 // ring doublings (latency exceeded the horizon)
}

// newWheel returns a wheel with size slots; size must be a power of two.
func newWheel[T any](size int) wheel[T] {
	return wheel[T]{
		slots: make([][]T, size),
		when:  make([]int64, size),
		mask:  int64(size - 1),
	}
}

// schedule files ev for cycle at; now is the current cycle. at must satisfy
// now <= at (events in the past are a modeling bug and would be lost).
func (w *wheel[T]) schedule(now, at int64, ev T) {
	if at-now >= int64(len(w.slots)) {
		w.grow(at - now)
	}
	i := at & w.mask
	if len(w.slots[i]) == 0 {
		w.when[i] = at
		if cap(w.slots[i]) > 0 {
			w.recycled++
		}
	}
	w.slots[i] = append(w.slots[i], ev)
	w.scheduled++
}

// take drains and returns the events scheduled for cycle c. The returned
// slice is the slot's backing array: it is valid until the next schedule that
// hashes onto the same slot, which the wheel invariant defers for a full
// revolution.
func (w *wheel[T]) take(c int64) []T {
	i := c & w.mask
	s := w.slots[i]
	if len(s) == 0 {
		return nil
	}
	w.slots[i] = s[:0]
	return s
}

// grow doubles the ring until delta cycles ahead fit, rehoming pending slots
// by their absolute cycle. Pending cycles span less than the old size, so
// they cannot collide in the larger ring.
func (w *wheel[T]) grow(delta int64) {
	size := len(w.slots)
	for int64(size) <= delta {
		size *= 2
	}
	slots := make([][]T, size)
	when := make([]int64, size)
	mask := int64(size - 1)
	for i, s := range w.slots {
		if len(s) > 0 {
			j := w.when[i] & mask
			slots[j], when[j] = s, w.when[i]
		}
	}
	w.slots, w.when, w.mask = slots, when, mask
	w.grows++
}

// ---------------------------------------------------------------------------
// Wave sets

// waveSet is the producer set of one invalidation-wave step: a bitset over
// the ring slots of the window plus the list of marked slots (the seed of the
// consumer-list walk, and the clear list). Membership is by ring slot; the
// pipeline's waveAges array records the age each slot was marked with, so a
// consumer tests "is MY producer in the wave" as
//
//	set.has(o.prodIdx) && p.waveAges[o.prodIdx] == o.prodAge
//
// which is equivalent to the age-set membership the map implementation used:
// an age uniquely identifies an entry, an entry's ring slot is fixed for its
// lifetime, and the age guard rejects marks that belong to a different
// occupant of the slot.
//
// Sets are pooled on the pipeline (getWaveSet/putWaveSet) and cleared by
// walking idxs, so waves allocate nothing in steady state.
type waveSet struct {
	bits []uint64
	idxs []int
}

func newWaveSet(window int) *waveSet {
	return &waveSet{bits: make([]uint64, (window+63)/64)}
}

func (w *waveSet) add(idx int) {
	w.bits[idx>>6] |= 1 << (uint(idx) & 63)
	w.idxs = append(w.idxs, idx)
}

func (w *waveSet) has(idx int) bool {
	return w.bits[idx>>6]&(1<<(uint(idx)&63)) != 0
}

func (w *waveSet) clear() {
	for _, idx := range w.idxs {
		w.bits[idx>>6] &^= 1 << (uint(idx) & 63)
	}
	w.idxs = w.idxs[:0]
}

// getWaveSet returns a cleared set, reusing a pooled one when available.
func (p *Pipeline) getWaveSet() *waveSet {
	if n := len(p.wavePool); n > 0 {
		w := p.wavePool[n-1]
		p.wavePool = p.wavePool[:n-1]
		p.waveSetReuses++
		return w
	}
	return newWaveSet(len(p.entries))
}

// putWaveSet clears w and returns it to the pool.
func (p *Pipeline) putWaveSet(w *waveSet) {
	w.clear()
	p.wavePool = append(p.wavePool, w)
}

// mark adds e to the wave set and records its age for the slot-reuse guard.
func (p *Pipeline) mark(w *waveSet, e *entry) {
	w.add(e.idx)
	p.waveAges[e.idx] = e.age
}

// inWave reports whether the producer identified by (ring slot, age) is in
// the wave set.
func (p *Pipeline) inWave(w *waveSet, idx int, age int64) bool {
	return w.has(idx) && p.waveAges[idx] == age
}

// ---------------------------------------------------------------------------
// Replay deque

// recDeque is a ring-buffer deque of trace records, the replay queue that
// squashes and i-cache misses push re-dispatched instructions onto. Both
// mutating ends are O(1): the old slice representation re-allocated and
// copied the whole queue on every front insertion, which made long
// complete-invalidation replays quadratic (see BenchmarkReplayRequeue).
type recDeque struct {
	buf  []trace.Record // power-of-two capacity
	head int            // index of the front element
	n    int
}

func (d *recDeque) len() int { return d.n }

func (d *recDeque) grow() {
	size := 2 * len(d.buf)
	if size == 0 {
		size = 16
	}
	buf := make([]trace.Record, size)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf, d.head = buf, 0
}

func (d *recDeque) pushFront(rec trace.Record) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = rec
	d.n++
}

func (d *recDeque) pushBack(rec trace.Record) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = rec
	d.n++
}

// popFrontRef pops the front record, returning a pointer into the deque's
// buffer. The slot is valid only until the next push; callers copy what they
// keep (dispatch copies into the window entry) before mutating the deque.
func (d *recDeque) popFrontRef() *trace.Record {
	rec := &d.buf[d.head]
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return rec
}

func (d *recDeque) popFront() trace.Record {
	// The vacated slot is not zeroed: records hold no pointers, so stale
	// contents retain nothing.
	rec := d.buf[d.head]
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return rec
}

package cpu

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"

	"valuespec/internal/obs"
)

// Per-interval simulator time series recorded by Telemetry. Each point's X
// is the simulated cycle at the end of the interval; rates are normalized
// by the interval's cycle count, populations are sampled instantaneously at
// the interval boundary (see docs/OBSERVABILITY.md).
const (
	SeriesIPC           = "sim.ipc"                 // instructions retired per cycle
	SeriesOccupancy     = "sim.occupancy"           // mean occupied window entries
	SeriesReady         = "sim.ready"               // wakeup candidates at the boundary
	SeriesActive        = "sim.active"              // occupied entries still doing sweep work
	SeriesSettled       = "sim.settled"             // entries settled (sweep permanently a no-op)
	SeriesDormant       = "sim.dormant"             // entries dormant (asleep until a wake event)
	SeriesIssueUtil     = "sim.issue_util"          // issue grants per slot offered
	SeriesCorrectUsed   = "sim.pred_correct_used"   // quadrant: correct and speculated on
	SeriesWrongUsed     = "sim.pred_wrong_used"     // quadrant: wrong and speculated on
	SeriesCorrectUnused = "sim.pred_correct_unused" // quadrant: correct but not confident
	SeriesWrongUnused   = "sim.pred_wrong_unused"   // quadrant: wrong and filtered out
	SeriesNullified     = "sim.nullified"           // executions voided in the interval
	SeriesReissues      = "sim.reissues"            // reissues in the interval
	SeriesFetchStall    = "sim.fetch_stall_frac"    // fraction of cycles fetch was blocked

	// Latency histograms (cycles), one pair per simulated run/model.
	MetricSimVerifyLatency     = "sim.verify_latency"     // completion → equality match
	MetricSimInvalidateLatency = "sim.invalidate_latency" // completion → mismatch detection
)

// Series index constants; order defines the CSV column order.
const (
	tsIPC = iota
	tsOccupancy
	tsReady
	tsActive
	tsSettled
	tsDormant
	tsIssueUtil
	tsCorrectUsed
	tsWrongUsed
	tsCorrectUnused
	tsWrongUnused
	tsNullified
	tsReissues
	tsFetchStall
	numTelemetrySeries
)

var telemetrySeriesNames = [numTelemetrySeries]string{
	tsIPC:           SeriesIPC,
	tsOccupancy:     SeriesOccupancy,
	tsReady:         SeriesReady,
	tsActive:        SeriesActive,
	tsSettled:       SeriesSettled,
	tsDormant:       SeriesDormant,
	tsIssueUtil:     SeriesIssueUtil,
	tsCorrectUsed:   SeriesCorrectUsed,
	tsWrongUsed:     SeriesWrongUsed,
	tsCorrectUnused: SeriesCorrectUnused,
	tsWrongUnused:   SeriesWrongUnused,
	tsNullified:     SeriesNullified,
	tsReissues:      SeriesReissues,
	tsFetchStall:    SeriesFetchStall,
}

// TelemetrySeriesNames returns the names of every per-interval series a
// Telemetry records, in column order. Exported for the metric-name lint.
func TelemetrySeriesNames() []string {
	out := make([]string, numTelemetrySeries)
	copy(out, telemetrySeriesNames[:])
	return out
}

// Telemetry is the microarchitectural interval sampler: at Runner.Step
// boundaries it records pipeline population and speculation-outcome time
// series into fixed-capacity obs.TimeSeries rings, and at event sites it
// observes verification/invalidation latencies. Unlike Metrics (per-cycle
// distributions), Telemetry touches the pipeline only between Step calls,
// so the per-cycle loop is unchanged; a nil Telemetry costs one pointer
// test per hook site and everything is preallocated, so an attached-but-idle
// sampler keeps the steady-state loop at zero allocations.
//
// Install with Pipeline.SetTelemetry before running; one Telemetry serves
// one run.
type Telemetry struct {
	interval int64
	nextDue  int64

	series [numTelemetrySeries]*obs.TimeSeries

	verifyLat *obs.Histogram
	invalLat  *obs.Histogram

	outcomes obs.SpecOutcomes

	prev      Stats // counter values at the previous sample boundary
	prevCycle int64
}

// NewTelemetry creates a sampler recording every interval cycles (clamped
// to ≥ 1) into series of at most capacity retained points each.
func NewTelemetry(interval int64, capacity int) *Telemetry {
	if interval < 1 {
		interval = 1
	}
	t := &Telemetry{
		interval:  interval,
		nextDue:   interval,
		verifyLat: obs.NewHistogram(),
		invalLat:  obs.NewHistogram(),
	}
	for i := range t.series {
		t.series[i] = obs.NewTimeSeries(capacity)
	}
	return t
}

// SetTelemetry installs an interval sampler; pass nil to remove. Must be
// called before the run starts.
func (p *Pipeline) SetTelemetry(t *Telemetry) { p.telem = t }

// Telemetry returns the installed sampler, if any.
func (p *Pipeline) Telemetry() *Telemetry { return p.telem }

// Interval returns the sampling interval in cycles.
func (t *Telemetry) Interval() int64 { return t.interval }

// Series returns the time series with the given sim.* name, or nil.
func (t *Telemetry) Series(name string) *obs.TimeSeries {
	for i, n := range telemetrySeriesNames {
		if n == name {
			return t.series[i]
		}
	}
	return nil
}

// Outcomes returns the final four-quadrant speculation-outcome block;
// populated when the run finishes.
func (t *Telemetry) Outcomes() obs.SpecOutcomes { return t.outcomes }

// VerifyLatency returns the completion→verification latency histogram.
func (t *Telemetry) VerifyLatency() *obs.Histogram { return t.verifyLat }

// InvalidateLatency returns the completion→mismatch-detection latency
// histogram.
func (t *Telemetry) InvalidateLatency() *obs.Histogram { return t.invalLat }

// popcount returns the number of set bits across a window bitset.
func popcount(w []uint64) int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// sample records one interval ending at the pipeline's current cycle.
// Counter-derived series are interval deltas (so their sums reconcile with
// the end-of-run Stats totals); populations are instantaneous.
func (t *Telemetry) sample(p *Pipeline) {
	c := p.cycle
	dc := c - t.prevCycle
	t.nextDue = c + t.interval
	if dc <= 0 {
		return
	}
	st := &p.stats
	fdc := float64(dc)
	t.series[tsIPC].Append(c, float64(st.Retired-t.prev.Retired)/fdc)
	t.series[tsOccupancy].Append(c, float64(st.OccupancySum-t.prev.OccupancySum)/fdc)

	settled := popcount(p.settledBits)
	dormant := popcount(p.dormantBits)
	active := p.count - settled - dormant
	if active < 0 {
		active = 0
	}
	t.series[tsReady].Append(c, float64(popcount(p.readyBits)))
	t.series[tsActive].Append(c, float64(active))
	t.series[tsSettled].Append(c, float64(settled))
	t.series[tsDormant].Append(c, float64(dormant))

	t.series[tsIssueUtil].Append(c, float64(st.Issues-t.prev.Issues)/(fdc*float64(p.cfg.IssueWidth)))
	t.series[tsCorrectUsed].Append(c, float64(st.CH-t.prev.CH))
	t.series[tsWrongUsed].Append(c, float64(st.IH-t.prev.IH))
	t.series[tsCorrectUnused].Append(c, float64(st.CL-t.prev.CL))
	t.series[tsWrongUnused].Append(c, float64(st.IL-t.prev.IL))
	t.series[tsNullified].Append(c, float64(st.Nullified-t.prev.Nullified))
	t.series[tsReissues].Append(c, float64(st.Reissues-t.prev.Reissues))
	t.series[tsFetchStall].Append(c, float64(st.FetchStallCycles-t.prev.FetchStallCycles)/fdc)

	t.prev = *st
	t.prevCycle = c
}

// finishRun takes the final partial-interval sample and freezes the
// speculation-outcome quadrants from the run's totals.
func (t *Telemetry) finishRun(p *Pipeline) {
	if p.cycle > t.prevCycle {
		t.sample(p)
	}
	st := &p.stats
	t.outcomes = obs.SpecOutcomes{
		Predictions:   st.Predictions,
		CorrectUsed:   st.CH,
		WrongUsed:     st.IH,
		CorrectUnused: st.CL,
		WrongUnused:   st.IL,
	}
}

// WriteCSV writes the recorded series as one CSV table: a cycle column
// followed by one column per series, one row per retained interval. All
// series are appended in lockstep, so they share row boundaries.
func (t *Telemetry) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "cycle")
	for _, n := range telemetrySeriesNames {
		fmt.Fprintf(bw, ",%s", n)
	}
	fmt.Fprintln(bw)
	var cols [numTelemetrySeries][]obs.Point
	rows := -1
	for i := range t.series {
		cols[i] = t.series[i].Points(nil)
		if rows < 0 || len(cols[i]) < rows {
			rows = len(cols[i])
		}
	}
	for r := 0; r < rows; r++ {
		fmt.Fprintf(bw, "%d", cols[0][r].X)
		for i := 0; i < numTelemetrySeries; i++ {
			fmt.Fprintf(bw, ",%g", cols[i][r].Y)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// LatencySummary is a compact, serializable digest of a latency histogram.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   int64   `json:"max"`
}

func summarizeLatency(h *obs.Histogram) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// TelemetrySnapshot is the JSON-serializable export of a finished run's
// telemetry, compact enough to store alongside job results.
type TelemetrySnapshot struct {
	Interval          int64                  `json:"interval"`
	Outcomes          obs.SpecOutcomes       `json:"outcomes"`
	VerifyLatency     LatencySummary         `json:"verify_latency"`
	InvalidateLatency LatencySummary         `json:"invalidate_latency"`
	Series            map[string][]obs.Point `json:"series"`
}

// Snapshot exports the telemetry for serialization. Call after the run has
// finished.
func (t *Telemetry) Snapshot() *TelemetrySnapshot {
	s := &TelemetrySnapshot{
		Interval:          t.interval,
		Outcomes:          t.outcomes,
		VerifyLatency:     summarizeLatency(t.verifyLat),
		InvalidateLatency: summarizeLatency(t.invalLat),
		Series:            make(map[string][]obs.Point, numTelemetrySeries),
	}
	for i, name := range telemetrySeriesNames {
		s.Series[name] = t.series[i].Points(nil)
	}
	return s
}

package cpu

import (
	"fmt"
	"io"

	"valuespec/internal/obs"
)

// TraceRecorder is an Observer that converts the pipeline event stream into
// a Chrome trace (chrome://tracing / Perfetto): one track per window slot,
// one slice per dispatch-to-retire instruction lifetime, and instant events
// for invalidations, verifications and branch resolves. One simulated cycle
// maps to one trace microsecond, so the viewer's time axis reads as cycles.
type TraceRecorder struct {
	trace obs.Trace
	open  map[int64]openSlice // seq -> pending dispatch
	named map[int]bool        // slots with an emitted track name
}

type openSlice struct {
	cycle  int64
	slot   int
	pc     int
	issues int
}

// tracePID groups every window-slot track under one process.
const tracePID = 0

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder {
	r := &TraceRecorder{
		open:  make(map[int64]openSlice),
		named: make(map[int]bool),
	}
	r.trace.ProcessName(tracePID, "instruction window")
	return r
}

// Observe implements Observer.
func (r *TraceRecorder) Observe(ev Event) {
	if !r.named[ev.Slot] {
		r.named[ev.Slot] = true
		r.trace.ThreadName(tracePID, ev.Slot, fmt.Sprintf("slot %d", ev.Slot))
	}
	switch ev.Kind {
	case EvDispatch:
		// A squashed instruction re-dispatches under the same seq; the new
		// lifetime simply replaces the abandoned one.
		r.open[ev.Seq] = openSlice{cycle: ev.Cycle, slot: ev.Slot, pc: ev.PC}
	case EvIssue:
		if o, ok := r.open[ev.Seq]; ok {
			o.issues++
			r.open[ev.Seq] = o
		}
	case EvRetire:
		o, ok := r.open[ev.Seq]
		if !ok {
			return
		}
		delete(r.open, ev.Seq)
		r.trace.Complete(tracePID, o.slot, fmt.Sprintf("i%d @pc %d", ev.Seq, o.pc),
			o.cycle, ev.Cycle-o.cycle+1,
			map[string]any{"seq": ev.Seq, "pc": o.pc, "issues": o.issues})
	case EvInvalidate:
		r.trace.Instant(tracePID, ev.Slot, "invalidate", ev.Cycle,
			map[string]any{"seq": ev.Seq})
	case EvResolve:
		r.trace.Instant(tracePID, ev.Slot, "resolve", ev.Cycle,
			map[string]any{"seq": ev.Seq})
	case EvVerify:
		r.trace.Instant(tracePID, ev.Slot, "verify", ev.Cycle,
			map[string]any{"seq": ev.Seq})
	}
}

// Len returns the number of accumulated trace events.
func (r *TraceRecorder) Len() int { return r.trace.Len() }

// WriteJSON writes the accumulated trace in Chrome trace-event JSON form.
// Instructions still in flight (squashed, or alive when the simulation was
// cut short) are omitted: they have no retire edge to close their slice.
func (r *TraceRecorder) WriteJSON(w io.Writer) error { return r.trace.WriteJSON(w) }

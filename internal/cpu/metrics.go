package cpu

import (
	runtimemetrics "runtime/metrics"

	"valuespec/internal/obs"
)

// Metric names published by the pipeline, beyond the counters mirrored from
// Stats.Counters (see docs/OBSERVABILITY.md for the catalog with units).
const (
	MetricOccupancy     = "window.occupancy"        // histogram: occupied entries, sampled per cycle
	MetricIssueSlots    = "issue.slots_used"        // histogram: issue grants per cycle
	MetricReissueDepth  = "reissue.depth"           // histogram: extra executions per retired instruction
	MetricVerifyLatency = "verify.latency"          // histogram: cycles from completion to equality verification
	MetricRetireLatency = "retire.latency"          // histogram: cycles from dispatch to retirement
	MetricStoreFwdRate  = "mem.store_forward_rate"  // gauge: store forwards per load over the last interval
	MetricWaveSize      = "invalidation.wave_nulls" // histogram: entries nullified per invalidation wave step

	// Hot-loop data-structure counters (see docs/PERFORMANCE.md).
	MetricEventsScheduled  = "events.scheduled"         // counter: events filed into the timing wheels
	MetricEventsRecycled   = "events.slots_recycled"    // counter: wheel slot slices reused with retained capacity
	MetricWheelGrows       = "events.wheel_grows"       // counter: wheel ring doublings (latency beyond the horizon)
	MetricWaveSetReuses    = "events.wavesets_recycled" // counter: invalidation wave sets served from the pool
	MetricAllocsPerCycle   = "runtime.allocs_per_cycle" // gauge: heap objects allocated per cycle over the last interval
	runtimeAllocsObjMetric = "/gc/heap/allocs:objects"  // runtime/metrics source for MetricAllocsPerCycle
)

// Metrics collects sampled distributions and an interval time series from
// one pipeline. Install with Pipeline.SetMetrics before Run; a nil Metrics
// costs nothing (a single pointer test per hook site).
//
// The registry mirrors every Stats counter under the Stats.Counters names,
// synced at each sampling boundary, so summed interval deltas reconcile
// exactly with the end-of-run totals.
type Metrics struct {
	Registry *obs.Registry
	Sampler  *obs.IntervalSampler

	occupancy    *obs.Histogram
	issueSlots   *obs.Histogram
	reissueDepth *obs.Histogram
	verifyLat    *obs.Histogram
	retireLat    *obs.Histogram
	waveSize     *obs.Histogram
	fwdRate      *obs.Gauge

	evScheduled *obs.Counter
	evRecycled  *obs.Counter
	wheelGrows  *obs.Counter
	wsReuses    *obs.Counter
	allocsRate  *obs.Gauge

	prevIssues int64
	prevLoads  int64
	prevFwds   int64

	// runtime/metrics sample buffer for the allocs-per-cycle gauge, reused
	// across samples; prevAllocs/prevCycle delimit the last interval.
	rtSample   [1]runtimemetrics.Sample
	prevAllocs uint64
	prevCycle  int64
}

// NewMetrics creates a collector sampling every interval cycles into a ring
// of up to capacity snapshots (capacity <= 0 retains every snapshot;
// interval < 1 samples every cycle).
func NewMetrics(interval int64, capacity int) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		Registry:     reg,
		occupancy:    reg.Histogram(MetricOccupancy),
		issueSlots:   reg.Histogram(MetricIssueSlots),
		reissueDepth: reg.Histogram(MetricReissueDepth),
		verifyLat:    reg.Histogram(MetricVerifyLatency),
		retireLat:    reg.Histogram(MetricRetireLatency),
		waveSize:     reg.Histogram(MetricWaveSize),
		fwdRate:      reg.Gauge(MetricStoreFwdRate),
		evScheduled:  reg.Counter(MetricEventsScheduled),
		evRecycled:   reg.Counter(MetricEventsRecycled),
		wheelGrows:   reg.Counter(MetricWheelGrows),
		wsReuses:     reg.Counter(MetricWaveSetReuses),
		allocsRate:   reg.Gauge(MetricAllocsPerCycle),
	}
	m.rtSample[0].Name = runtimeAllocsObjMetric
	// Register the counter mirrors up front so the sampler's column set is
	// complete from the first snapshot.
	for _, c := range (&Stats{}).Counters() {
		reg.Counter(c.Name)
	}
	m.Sampler = obs.NewIntervalSampler(reg, interval, capacity)
	return m
}

// SetMetrics installs a metrics collector; pass nil to remove. Must be
// called before Run.
func (p *Pipeline) SetMetrics(m *Metrics) { p.metrics = m }

// Metrics returns the installed collector, if any.
func (p *Pipeline) Metrics() *Metrics { return p.metrics }

// cycleStart records the per-cycle gauges sampled at the top of step.
func (m *Metrics) cycleStart(occupancy int) {
	m.occupancy.Observe(int64(occupancy))
}

// cycleEnd records end-of-cycle distributions and takes an interval sample
// when one is due.
func (m *Metrics) cycleEnd(p *Pipeline) {
	st := &p.stats
	m.issueSlots.Observe(st.Issues - m.prevIssues)
	m.prevIssues = st.Issues
	if m.Sampler.Due(p.cycle) {
		m.sample(p)
	}
}

// sample syncs the counter mirrors from the pipeline and snapshots the
// registry.
func (m *Metrics) sample(p *Pipeline) {
	st := &p.stats
	cycle := p.cycle
	for _, c := range st.Counters() {
		m.Registry.Counter(c.Name).Set(c.Value)
	}
	if dl := st.Loads - m.prevLoads; dl > 0 {
		m.fwdRate.Set(float64(st.StoreForwards-m.prevFwds) / float64(dl))
	} else {
		m.fwdRate.Set(0)
	}
	m.prevLoads, m.prevFwds = st.Loads, st.StoreForwards

	m.evScheduled.Set(p.eqWheel.scheduled + p.waveWheel.scheduled + p.wbWheel.scheduled)
	m.evRecycled.Set(p.eqWheel.recycled + p.waveWheel.recycled + p.wbWheel.recycled)
	m.wheelGrows.Set(p.eqWheel.grows + p.waveWheel.grows + p.wbWheel.grows)
	m.wsReuses.Set(p.waveSetReuses)

	// Heap objects allocated per simulated cycle over the interval: the
	// steady-state loop itself allocates nothing, so this gauge surfaces
	// warmup growth and any observer/metrics overhead.
	runtimemetrics.Read(m.rtSample[:])
	allocs := m.rtSample[0].Value.Uint64()
	if dc := cycle - m.prevCycle; dc > 0 {
		m.allocsRate.Set(float64(allocs-m.prevAllocs) / float64(dc))
	}
	m.prevAllocs, m.prevCycle = allocs, cycle

	m.Sampler.Sample(cycle)
}

// finish takes the final snapshot covering the last partial interval, so
// the series' counter deltas span the whole run.
func (m *Metrics) finish(p *Pipeline) {
	if m.Sampler.Pending(p.cycle) {
		m.sample(p)
	}
}

package cpu

import "valuespec/internal/obs"

// Metric names published by the pipeline, beyond the counters mirrored from
// Stats.Counters (see docs/OBSERVABILITY.md for the catalog with units).
const (
	MetricOccupancy     = "window.occupancy"        // histogram: occupied entries, sampled per cycle
	MetricIssueSlots    = "issue.slots_used"        // histogram: issue grants per cycle
	MetricReissueDepth  = "reissue.depth"           // histogram: extra executions per retired instruction
	MetricVerifyLatency = "verify.latency"          // histogram: cycles from completion to equality verification
	MetricRetireLatency = "retire.latency"          // histogram: cycles from dispatch to retirement
	MetricStoreFwdRate  = "mem.store_forward_rate"  // gauge: store forwards per load over the last interval
	MetricWaveSize      = "invalidation.wave_nulls" // histogram: entries nullified per invalidation wave step
)

// Metrics collects sampled distributions and an interval time series from
// one pipeline. Install with Pipeline.SetMetrics before Run; a nil Metrics
// costs nothing (a single pointer test per hook site).
//
// The registry mirrors every Stats counter under the Stats.Counters names,
// synced at each sampling boundary, so summed interval deltas reconcile
// exactly with the end-of-run totals.
type Metrics struct {
	Registry *obs.Registry
	Sampler  *obs.IntervalSampler

	occupancy    *obs.Histogram
	issueSlots   *obs.Histogram
	reissueDepth *obs.Histogram
	verifyLat    *obs.Histogram
	retireLat    *obs.Histogram
	waveSize     *obs.Histogram
	fwdRate      *obs.Gauge

	prevIssues int64
	prevLoads  int64
	prevFwds   int64
}

// NewMetrics creates a collector sampling every interval cycles into a ring
// of up to capacity snapshots (capacity <= 0 retains every snapshot;
// interval < 1 samples every cycle).
func NewMetrics(interval int64, capacity int) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		Registry:     reg,
		occupancy:    reg.Histogram(MetricOccupancy),
		issueSlots:   reg.Histogram(MetricIssueSlots),
		reissueDepth: reg.Histogram(MetricReissueDepth),
		verifyLat:    reg.Histogram(MetricVerifyLatency),
		retireLat:    reg.Histogram(MetricRetireLatency),
		waveSize:     reg.Histogram(MetricWaveSize),
		fwdRate:      reg.Gauge(MetricStoreFwdRate),
	}
	// Register the counter mirrors up front so the sampler's column set is
	// complete from the first snapshot.
	for _, c := range (&Stats{}).Counters() {
		reg.Counter(c.Name)
	}
	m.Sampler = obs.NewIntervalSampler(reg, interval, capacity)
	return m
}

// SetMetrics installs a metrics collector; pass nil to remove. Must be
// called before Run.
func (p *Pipeline) SetMetrics(m *Metrics) { p.metrics = m }

// Metrics returns the installed collector, if any.
func (p *Pipeline) Metrics() *Metrics { return p.metrics }

// cycleStart records the per-cycle gauges sampled at the top of step.
func (m *Metrics) cycleStart(occupancy int) {
	m.occupancy.Observe(int64(occupancy))
}

// cycleEnd records end-of-cycle distributions and takes an interval sample
// when one is due. cycle is the number of completed cycles.
func (m *Metrics) cycleEnd(cycle int64, st *Stats) {
	m.issueSlots.Observe(st.Issues - m.prevIssues)
	m.prevIssues = st.Issues
	if m.Sampler.Due(cycle) {
		m.sample(cycle, st)
	}
}

// sample syncs the counter mirrors from st and snapshots the registry.
func (m *Metrics) sample(cycle int64, st *Stats) {
	for _, c := range st.Counters() {
		m.Registry.Counter(c.Name).Set(c.Value)
	}
	if dl := st.Loads - m.prevLoads; dl > 0 {
		m.fwdRate.Set(float64(st.StoreForwards-m.prevFwds) / float64(dl))
	} else {
		m.fwdRate.Set(0)
	}
	m.prevLoads, m.prevFwds = st.Loads, st.StoreForwards
	m.Sampler.Sample(cycle)
}

// finish takes the final snapshot covering the last partial interval, so
// the series' counter deltas span the whole run.
func (m *Metrics) finish(cycle int64, st *Stats) {
	if m.Sampler.Pending(cycle) {
		m.sample(cycle, st)
	}
}

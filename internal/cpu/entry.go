package cpu

import (
	"valuespec/internal/core"
	"valuespec/internal/isa"
	"valuespec/internal/trace"
)

// never is a cycle stamp meaning "not yet"; real stamps are non-negative.
const never int64 = -1

// operand is one source operand of a reservation station: the 2-bit ready
// state of the paper's extended RS plus the simulator-side bookkeeping that
// lets the verification network act with value-based filtering.
// operand's byte-wide fields are grouped so the struct packs into 40 bytes
// (two per entry; the sweep walks them every cycle).
type operand struct {
	reg isa.Reg

	// inWindow is false when the value was read from the architected
	// register file at dispatch (always valid).
	inWindow bool

	// Current value view, synced from the producer by the per-cycle sweep.
	state   core.ValueState
	correct bool // ground truth: the held value is architecturally correct

	// everSpec records whether the operand was ever predicted or
	// speculative; the Verification-Branch and Verification-Address-Memory
	// latencies only apply to operands that needed verification.
	everSpec bool

	// Producer linkage.
	prodIdx int32 // ring index of the producing entry (window ≤ 2^31 slots)
	prodAge int64 // age of the producer, to detect slot reuse

	ready   int64 // earliest cycle a consumer may issue using this value
	validAt int64 // cycle the value became Valid (never until then)
}

// available reports whether the operand can feed an execution at cycle c
// under the forwarding policy.
func (o *operand) available(c int64, forwardSpec bool) bool {
	if !o.state.Available() || o.ready == never || c < o.ready {
		return false
	}
	if !forwardSpec && o.state == core.StateSpeculative {
		return false
	}
	return true
}

// validBy reports whether the operand is Valid with validAt <= c.
func (o *operand) validBy(c int64) bool {
	return o.state == core.StateValid && o.validAt != never && o.validAt <= c
}

// entry is one reservation station in the unified instruction window.
//
// Field order is deliberate: the leading group is the entry's "broadcast
// header" — everything a consumer's syncOperand reads from its producer
// (used, age, the out* view, validAt) plus the class/nsrc bytes the sweep
// and wakeup walks test first — so those walks touch one cache line of a
// ~350-byte entry instead of several. The rarely-read rec (104 bytes) sits
// at the tail.
type entry struct {
	used       bool
	outCorrect bool
	outState   core.ValueState
	cls        isa.Class
	nsrc       int
	idx        int   // ring index of this entry (fixed for its lifetime)
	age        int64 // dispatch order, unique across the run
	outReady   int64
	validAt    int64 // cycle output became known-valid (never until then)

	dispatchCycle int64
	src           [2]operand

	// Value prediction of this entry's output.
	vpMade    bool   // a prediction was made (register-writing instruction)
	vpUsed    bool   // the prediction drove speculation (confident)
	vpCorrect bool   // ground truth: predicted value == actual result
	vpDead    bool   // equality exposed the prediction as wrong
	vpValue   int64  // the predicted value
	vpCookie  uint64 // predictor training cookie
	replayed  bool   // re-dispatched after a squash (not re-predicted)

	// Execution state. execToken invalidates stale completion and equality
	// events after nullification.
	issued        bool
	inFlight      bool
	execCount     int   // executions begun (for the limited-wakeup policy)
	inFlightDone  int64 // doneCycle of the in-flight execution
	inFlightClean bool
	usedCorrect   [2]bool // ground truth of each operand value consumed at issue
	execToken     int64
	earliestIssue int64
	wasNullified  bool

	doneExec  bool  // latest execution has completed and broadcast
	execClean bool  // that execution consumed only correct values
	doneCycle int64 // cycle during which it completed
	eqDone    bool  // equality outcome actionable (speculated predictions)
	eqReady   int64 // cycle the equality outcome becomes actionable
	usedSpec  bool  // some input was speculative when last issued

	// The output view exposed to consumers (outState, outCorrect, outReady,
	// validAt) lives in the broadcast header at the top of the struct; see
	// broadcast and refreshOutput.

	// Memory state. For loads, execution is address generation and the
	// access is a separate phase; for stores, address generation is the
	// only execution and the access happens at retirement.
	agDone     bool
	agCycle    int64 // cycle the generated address becomes usable
	memStarted bool
	memDone    bool
	memDoneAt  int64
	fwdStore   int64 // age of the forwarding store, never if from cache
	fwdDataOK  bool  // ground truth of the value the access returned
	fwdProdAge int64 // age of the forwarded data's producer, never if none
	fwdProdIdx int   // ring index of that producer, -1 if none

	// Branch state.
	resolved    bool
	resolveAt   int64
	brMispred   bool // gshare direction was wrong (conditional branches)
	specResolve bool // resolved speculatively with wrong operands (ablation)

	// retireAt is the earliest retirement cycle once the output is valid.
	retireAt int64

	// rec is the dynamic-instruction record (104 bytes); kept at the tail so
	// it does not push the hot header and operands onto later cache lines.
	rec trace.Record

	// Event-driven wakeup bookkeeping. cons lists the ring indices of
	// entries registered as consumers of this entry's output (register
	// operands at dispatch, store-forwarded data at access time); stale
	// registrations are filtered at use by re-checking the dependence.
	// inQ tracks membership in the pipeline's ready queue.
	cons []int
	inQ  bool
}

func (e *entry) writesReg() bool { return isa.WritesReg(e.rec.Instr.Op) }

// reset prepares a slot for a new dispatch. It deliberately does NOT touch
// the fields its only caller (dispatch) assigns unconditionally right after —
// used, idx, age, rec, cls, replayed, dispatchCycle, earliestIssue, nsrc and
// src[0:nsrc] — nor src slots at or past nsrc, which no reader ever consults:
// a whole-struct `*e = entry{...}` re-zeroed the ~350-byte entry (104 of
// which is rec) on every dispatch, and the resulting duffcopy was one of the
// hottest instructions in the sweep profile.
func (e *entry) reset() {
	e.vpMade = false
	e.vpUsed = false
	e.vpCorrect = false
	e.vpDead = false
	e.vpValue = 0
	e.vpCookie = 0
	e.issued = false
	e.inFlight = false
	e.execCount = 0
	e.inFlightDone = never
	e.inFlightClean = false
	e.usedCorrect[0] = false
	e.usedCorrect[1] = false
	e.execToken = 0
	e.wasNullified = false
	e.doneExec = false
	e.execClean = false
	e.doneCycle = never
	e.eqDone = false
	e.eqReady = never
	e.usedSpec = false
	e.outState = core.StateInvalid
	e.outCorrect = false
	e.outReady = never
	e.validAt = never
	e.agDone = false
	e.agCycle = never
	e.memStarted = false
	e.memDone = false
	e.memDoneAt = never
	e.fwdStore = never
	e.fwdDataOK = false
	e.fwdProdAge = never
	e.fwdProdIdx = -1
	e.resolved = false
	e.resolveAt = never
	e.brMispred = false
	e.specResolve = false
	e.retireAt = never
	e.cons = e.cons[:0] // keep the consumer-list allocation across reuse
	e.inQ = false
}

// nullify voids the effects of previous executions so the entry can wake up
// again (the paper's nullification semantics), applying the
// Invalidation-Reissue latency from cycle c.
func (e *entry) nullify(c, reissueLat int64) {
	e.issued = false
	e.inFlight = false
	e.execToken++
	e.wasNullified = true
	e.doneExec = false
	e.execClean = false
	e.doneCycle = never
	e.eqDone = false
	e.eqReady = never
	e.validAt = never
	e.retireAt = never
	e.usedSpec = false
	// Memory and branch work is redone after reissue.
	e.agDone = false
	e.agCycle = never
	e.memStarted = false
	e.memDone = false
	e.memDoneAt = never
	e.fwdStore = never
	e.fwdDataOK = false
	e.fwdProdAge = never
	e.fwdProdIdx = -1
	e.resolved = false
	e.resolveAt = never
	e.earliestIssue = maxi64(e.earliestIssue, c+reissueLat)
	// Output view: if this entry's own prediction is still standing its
	// consumers keep the predicted value; otherwise nothing is available
	// until the re-execution broadcasts.
	if e.vpUsed && !e.vpDead {
		e.outState = core.StatePredicted
		e.outCorrect = e.vpCorrect
		e.outReady = e.dispatchCycle
	} else {
		e.outState = core.StateInvalid
		e.outCorrect = false
		e.outReady = never
	}
}

package vpred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"valuespec/internal/isa"
	"valuespec/internal/trace"
)

// drive trains predictor p on the value sequence seq for the given pc in
// immediate mode, returning the number of correct predictions over the last
// round of the sequence.
func lastRoundAccuracy(p Predictor, pc int, seq []int64, rounds int) int {
	correct := 0
	for r := 0; r < rounds; r++ {
		for _, v := range seq {
			pred, ck := p.Lookup(pc)
			if r == rounds-1 && pred == v {
				correct++
			}
			p.TrainImmediate(pc, ck, v)
		}
	}
	return correct
}

func TestFCMLearnsRepeatingSequence(t *testing.T) {
	f := NewFCM(DefaultFCMConfig())
	seq := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := lastRoundAccuracy(f, 0x10, seq, 6); got != len(seq) {
		t.Errorf("FCM predicted %d/%d of a repeating sequence", got, len(seq))
	}
}

func TestFCMLearnsConstants(t *testing.T) {
	f := NewFCM(DefaultFCMConfig())
	if got := lastRoundAccuracy(f, 0x20, []int64{42}, 8); got != 1 {
		t.Error("FCM failed to predict a constant")
	}
}

func TestLastValuePredictsConstantsOnly(t *testing.T) {
	l := NewLastValue(8)
	if got := lastRoundAccuracy(l, 1, []int64{7}, 4); got != 1 {
		t.Error("last-value failed on a constant")
	}
	// A counting sequence defeats last-value prediction entirely.
	l.Reset()
	correct := 0
	for i := int64(0); i < 50; i++ {
		pred, ck := l.Lookup(2)
		if pred == i {
			correct++
		}
		l.TrainImmediate(2, ck, i)
	}
	// Only the zero-initialized first lookup can coincide with the count.
	if correct > 1 {
		t.Errorf("last-value predicted %d of a counting sequence, want <= 1", correct)
	}
}

func TestStridePredictsCountingSequence(t *testing.T) {
	s := NewStride(8)
	correct := 0
	for i := int64(0); i < 50; i++ {
		pred, ck := s.Lookup(3)
		if i >= 2 && pred == i*4 {
			correct++
		}
		s.TrainImmediate(3, ck, i*4)
	}
	if correct != 48 {
		t.Errorf("stride predicted %d/48 of a strided sequence", correct)
	}
}

func TestFCMBeatsStrideOnPeriodicData(t *testing.T) {
	seq := []int64{10, 20, 10, 30, 10, 40}
	f := NewFCM(DefaultFCMConfig())
	s := NewStride(8)
	fc := lastRoundAccuracy(f, 5, seq, 8)
	sc := lastRoundAccuracy(s, 5, seq, 8)
	if fc <= sc {
		t.Errorf("FCM (%d) should beat stride (%d) on periodic data", fc, sc)
	}
}

func TestFCMReplacementCounter(t *testing.T) {
	// The 1-bit counter must keep a twice-confirmed value through a single
	// interfering mismatch: after training v twice, one mismatch clears the
	// counter but keeps v; a second mismatch replaces it.
	f := NewFCM(FCMConfig{HistoryBits: 4, PredictionBits: 4, HistoryDepth: 4})
	ctx := uint32(9)
	f.trainEntry(ctx, 100)
	f.trainEntry(ctx, 100)
	f.trainEntry(ctx, 55) // clears counter, keeps 100
	if f.pred[ctx].value != 100 {
		t.Fatalf("value replaced on first mismatch: %d", f.pred[ctx].value)
	}
	f.trainEntry(ctx, 55) // now replaces
	if f.pred[ctx].value != 55 {
		t.Fatalf("value not replaced on second mismatch: %d", f.pred[ctx].value)
	}
}

func TestFCMDelayedRepair(t *testing.T) {
	// In delayed mode with wrong speculative pushes, TrainDelayed must
	// restore the architectural context so the predictor still learns the
	// repeating sequence.
	f := NewFCM(DefaultFCMConfig())
	seq := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	pc := 7
	correct := 0
	for r := 0; r < 8; r++ {
		for _, v := range seq {
			pred, ck := f.Lookup(pc)
			f.SpeculateHistory(pc, pred)
			f.TrainDelayed(pc, ck, pred, v)
			if r == 7 && pred == v {
				correct++
			}
		}
	}
	if correct != len(seq) {
		t.Errorf("delayed FCM predicted %d/%d after repair", correct, len(seq))
	}
}

func TestFCMDelayedWithoutRepairDiverges(t *testing.T) {
	// Control for the repair test: if the speculative history is fed wrong
	// values and never repaired (simulated by skipping TrainDelayed's
	// repair via always-"correct" pred argument), learning should fail.
	f := NewFCM(DefaultFCMConfig())
	seq := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	pc := 8
	correct := 0
	for r := 0; r < 8; r++ {
		for _, v := range seq {
			pred, ck := f.Lookup(pc)
			f.SpeculateHistory(pc, pred+1) // poison the speculative history
			f.TrainDelayed(pc, ck, v, v)   // lie: claim the prediction was right
			if r == 7 && pred == v {
				correct++
			}
		}
	}
	if correct > len(seq)/2 {
		t.Errorf("poisoned history still predicted %d/%d; repair test is vacuous", correct, len(seq))
	}
}

func TestFCMConfigValidation(t *testing.T) {
	bad := []FCMConfig{
		{},
		{HistoryBits: 16, PredictionBits: 2, HistoryDepth: 4}, // under 1 bit/value
		{HistoryBits: 16, PredictionBits: 16},                 // zero depth
	}
	for _, cfg := range bad {
		func() {
			defer func() { recover() }()
			NewFCM(cfg)
			t.Errorf("NewFCM(%+v) did not panic", cfg)
		}()
	}
}

func TestScripted(t *testing.T) {
	s := &Scripted{Preds: map[int]int64{4: 44}}
	if v, _ := s.Lookup(4); v != 44 {
		t.Errorf("Lookup(4) = %d", v)
	}
	if v, _ := s.Lookup(5); v != 0 {
		t.Errorf("Lookup(5) = %d, want 0", v)
	}
}

func TestReset(t *testing.T) {
	for _, p := range []Predictor{NewFCM(DefaultFCMConfig()), NewLastValue(8), NewStride(8)} {
		pred, ck := p.Lookup(1)
		p.TrainImmediate(1, ck, 999)
		p.Reset()
		pred, _ = p.Lookup(1)
		if pred != 0 {
			t.Errorf("%T predicts %d after Reset, want 0", p, pred)
		}
	}
}

// TestPredictorsNeverPanic property-checks that arbitrary interleavings of
// lookups and training never fault and that Lookup is deterministic between
// mutations.
func TestPredictorsNeverPanic(t *testing.T) {
	mk := []func() Predictor{
		func() Predictor { return NewFCM(FCMConfig{HistoryBits: 6, PredictionBits: 8, HistoryDepth: 4}) },
		func() Predictor { return NewLastValue(6) },
		func() Predictor { return NewStride(6) },
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	for _, m := range mk {
		p := m()
		err := quick.Check(func(pc int, vals []int64, delayed bool) bool {
			pc &= 0xFFFF
			for _, v := range vals {
				pred, ck := p.Lookup(pc)
				again, _ := p.Lookup(pc)
				if pred != again {
					return false
				}
				if delayed {
					p.SpeculateHistory(pc, pred)
					p.TrainDelayed(pc, ck, pred, v)
				} else {
					p.TrainImmediate(pc, ck, v)
				}
			}
			return true
		}, cfg)
		if err != nil {
			t.Errorf("%T: %v", p, err)
		}
	}
}

func TestHybridTracksBetterComponent(t *testing.T) {
	// A strided stream where stride wins and a periodic stream where FCM
	// wins, on different PCs: the tournament must converge to the better
	// component for each.
	h := NewHybrid(8, FCMConfig{HistoryBits: 8, PredictionBits: 12, HistoryDepth: 4})

	stridedPC, periodicPC := 10, 11
	periodic := []int64{7, 7, 9, 3}
	correctStrided, correctPeriodic := 0, 0
	const rounds = 400
	for i := 0; i < rounds; i++ {
		pred, ck := h.Lookup(stridedPC)
		actual := int64(i) * 3
		if i > rounds/2 && pred == actual {
			correctStrided++
		}
		h.TrainImmediate(stridedPC, ck, actual)

		pred, ck = h.Lookup(periodicPC)
		actual = periodic[i%len(periodic)]
		if i > rounds/2 && pred == actual {
			correctPeriodic++
		}
		h.TrainImmediate(periodicPC, ck, actual)
	}
	half := rounds/2 - 1
	if correctStrided < half*9/10 {
		t.Errorf("hybrid got %d/%d on the strided stream", correctStrided, half)
	}
	if correctPeriodic < half*9/10 {
		t.Errorf("hybrid got %d/%d on the periodic stream", correctPeriodic, half)
	}
}

func TestHybridReset(t *testing.T) {
	h := NewHybrid(6, FCMConfig{HistoryBits: 6, PredictionBits: 8, HistoryDepth: 4})
	for i := 0; i < 20; i++ {
		_, ck := h.Lookup(4)
		h.TrainImmediate(4, ck, 42)
	}
	h.Reset()
	if pred, _ := h.Lookup(4); pred != 0 {
		t.Errorf("predicts %d after Reset", pred)
	}
}

func TestHybridDelayedMode(t *testing.T) {
	h := NewHybrid(6, FCMConfig{HistoryBits: 6, PredictionBits: 8, HistoryDepth: 4})
	seq := []int64{5, 6, 5, 8}
	correct := 0
	for r := 0; r < 12; r++ {
		for _, v := range seq {
			pred, ck := h.Lookup(9)
			h.SpeculateHistory(9, pred)
			h.TrainDelayed(9, ck, pred, v)
			if r == 11 && pred == v {
				correct++
			}
		}
	}
	if correct != len(seq) {
		t.Errorf("delayed hybrid predicted %d/%d", correct, len(seq))
	}
}

func TestEvaluate(t *testing.T) {
	// A stream with one perfectly periodic PC and one random-ish PC.
	var recs []trace.Record
	seq := []int64{5, 6, 7}
	for i := 0; i < 120; i++ {
		recs = append(recs, trace.Record{
			Seq: int64(2 * i), PC: 10,
			Instr:  isa.Instruction{Op: isa.LDI, Dst: 1},
			DstVal: seq[i%len(seq)],
		})
		recs = append(recs, trace.Record{
			Seq: int64(2*i + 1), PC: 11,
			Instr:  isa.Instruction{Op: isa.LDI, Dst: 2},
			DstVal: int64(i * 977 % 1009), // effectively unpredictable
		})
	}
	ev := Evaluate(NewFCM(DefaultFCMConfig()), &trace.SliceSource{Records: recs})
	if ev.Predictions != 240 {
		t.Fatalf("predictions = %d", ev.Predictions)
	}
	easy, hard := ev.PerPC[10], ev.PerPC[11]
	if easy.Accuracy() < 0.9 {
		t.Errorf("periodic PC accuracy %.2f", easy.Accuracy())
	}
	if hard.Accuracy() > 0.2 {
		t.Errorf("unpredictable PC accuracy %.2f", hard.Accuracy())
	}
	worst := ev.WorstPCs(1)
	if len(worst) != 1 || worst[0] != 11 {
		t.Errorf("WorstPCs = %v, want [11]", worst)
	}
	if s := ev.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestEvaluateSkipsNonWriters(t *testing.T) {
	recs := []trace.Record{
		{PC: 1, Instr: isa.Instruction{Op: isa.ST}},
		{PC: 2, Instr: isa.Instruction{Op: isa.BEQ}},
	}
	ev := Evaluate(NewLastValue(4), &trace.SliceSource{Records: recs})
	if ev.Predictions != 0 {
		t.Errorf("predicted %d non-writers", ev.Predictions)
	}
}

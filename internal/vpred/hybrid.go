package vpred

// Hybrid is a two-component tournament predictor: a stride predictor and a
// context-based FCM arbitrated by per-PC 2-bit chooser counters. The paper's
// related work (Section 3) points at hybrid organizations as the natural
// next step beyond single-scheme predictors; this implementation lets the
// harness quantify that step.
type Hybrid struct {
	stride  *Stride
	fcm     *FCM
	bits    uint
	chooser []uint8 // >= 2 selects the FCM

	// In-flight prediction state, addressed by a ring cookie. The ring only
	// needs to cover predictions outstanding between Lookup and training,
	// which is bounded by the instruction window; 4096 slots is generous.
	ring [4096]hybridSlot
	next uint64
}

type hybridSlot struct {
	strideCk, fcmCk     uint64
	stridePred, fcmPred int64
}

var _ Predictor = (*Hybrid)(nil)

// NewHybrid returns a tournament of NewStride(bits) and an FCM with the
// given configuration, with 1<<bits chooser counters.
func NewHybrid(bits uint, fcmCfg FCMConfig) *Hybrid {
	return &Hybrid{
		stride:  NewStride(bits),
		fcm:     NewFCM(fcmCfg),
		bits:    bits,
		chooser: make([]uint8, 1<<bits),
	}
}

func (h *Hybrid) slot(pc int) *uint8 {
	return &h.chooser[uint32(pc)&(uint32(1)<<h.bits-1)]
}

// Lookup implements Predictor.
func (h *Hybrid) Lookup(pc int) (int64, uint64) {
	sp, sck := h.stride.Lookup(pc)
	fp, fck := h.fcm.Lookup(pc)
	ck := h.next % uint64(len(h.ring))
	h.next++
	h.ring[ck] = hybridSlot{strideCk: sck, fcmCk: fck, stridePred: sp, fcmPred: fp}
	if *h.slot(pc) >= 2 {
		return fp, ck
	}
	return sp, ck
}

// train updates the chooser toward whichever component was right when they
// disagree in correctness.
func (h *Hybrid) train(pc int, s hybridSlot, actual int64) {
	strideOK, fcmOK := s.stridePred == actual, s.fcmPred == actual
	c := h.slot(pc)
	switch {
	case fcmOK && !strideOK && *c < 3:
		*c++
	case strideOK && !fcmOK && *c > 0:
		*c--
	}
}

// TrainImmediate implements Predictor.
func (h *Hybrid) TrainImmediate(pc int, cookie uint64, actual int64) {
	s := h.ring[cookie%uint64(len(h.ring))]
	h.train(pc, s, actual)
	h.stride.TrainImmediate(pc, s.strideCk, actual)
	h.fcm.TrainImmediate(pc, s.fcmCk, actual)
}

// SpeculateHistory implements Predictor.
func (h *Hybrid) SpeculateHistory(pc int, pred int64) {
	h.fcm.SpeculateHistory(pc, pred)
}

// TrainDelayed implements Predictor.
func (h *Hybrid) TrainDelayed(pc int, cookie uint64, pred, actual int64) {
	s := h.ring[cookie%uint64(len(h.ring))]
	h.train(pc, s, actual)
	h.stride.TrainDelayed(pc, s.strideCk, s.stridePred, actual)
	h.fcm.TrainDelayed(pc, s.fcmCk, s.fcmPred, actual)
}

// Reset implements Predictor.
func (h *Hybrid) Reset() {
	h.stride.Reset()
	h.fcm.Reset()
	for i := range h.chooser {
		h.chooser[i] = 0
	}
	h.ring = [4096]hybridSlot{}
	h.next = 0
}

package vpred

// Scripted returns fixed predictions per PC and ignores training; PCs
// without an entry predict zero. It exists for controlled experiments such
// as the paper's Fig. 1 scenarios, where the prediction outcomes are part
// of the scenario rather than of a predictor's behavior.
type Scripted struct {
	Preds map[int]int64
}

var _ Predictor = (*Scripted)(nil)

// Lookup implements Predictor.
func (s *Scripted) Lookup(pc int) (int64, uint64) { return s.Preds[pc], 0 }

// TrainImmediate implements Predictor.
func (s *Scripted) TrainImmediate(pc int, cookie uint64, actual int64) {}

// SpeculateHistory implements Predictor.
func (s *Scripted) SpeculateHistory(pc int, pred int64) {}

// TrainDelayed implements Predictor.
func (s *Scripted) TrainDelayed(pc int, cookie uint64, pred, actual int64) {}

// Reset implements Predictor.
func (s *Scripted) Reset() {}

package vpred

import (
	"fmt"
	"sort"

	"valuespec/internal/trace"
)

// Evaluation summarizes a predictor's accuracy over an instruction stream,
// measured outside any pipeline (architectural order, immediate update) —
// the way predictor papers report standalone accuracy.
type Evaluation struct {
	Predictions int64
	Correct     int64
	// PerPC maps static instructions to their individual accuracy; only
	// PCs with at least MinSamples predictions are retained.
	PerPC map[int]PCAccuracy
}

// PCAccuracy is the per-static-instruction breakdown.
type PCAccuracy struct {
	Predictions int64
	Correct     int64
}

// Accuracy returns the overall fraction correct.
func (e *Evaluation) Accuracy() float64 {
	if e.Predictions == 0 {
		return 0
	}
	return float64(e.Correct) / float64(e.Predictions)
}

// Accuracy returns the per-PC fraction correct.
func (a PCAccuracy) Accuracy() float64 {
	if a.Predictions == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Predictions)
}

// MinSamples is the retention threshold for Evaluation.PerPC.
const MinSamples = 16

// Evaluate drives p over every register-writing record of src with
// immediate update and returns the accuracy summary.
func Evaluate(p Predictor, src trace.Source) *Evaluation {
	ev := &Evaluation{PerPC: make(map[int]PCAccuracy)}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if !r.WritesReg() {
			continue
		}
		pred, ck := p.Lookup(r.PC)
		p.TrainImmediate(r.PC, ck, r.DstVal)
		ev.Predictions++
		acc := ev.PerPC[r.PC]
		acc.Predictions++
		if pred == r.DstVal {
			ev.Correct++
			acc.Correct++
		}
		ev.PerPC[r.PC] = acc
	}
	for pc, acc := range ev.PerPC {
		if acc.Predictions < MinSamples {
			delete(ev.PerPC, pc)
		}
	}
	return ev
}

// WorstPCs returns up to n static instructions with the lowest accuracy,
// hardest first — the profile a predictor designer would start from.
func (e *Evaluation) WorstPCs(n int) []int {
	pcs := make([]int, 0, len(e.PerPC))
	for pc := range e.PerPC {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		ai, aj := e.PerPC[pcs[i]].Accuracy(), e.PerPC[pcs[j]].Accuracy()
		if ai != aj {
			return ai < aj
		}
		return pcs[i] < pcs[j]
	})
	if len(pcs) > n {
		pcs = pcs[:n]
	}
	return pcs
}

// String summarizes the evaluation.
func (e *Evaluation) String() string {
	return fmt.Sprintf("%d predictions, %.1f%% correct, %d hot PCs",
		e.Predictions, 100*e.Accuracy(), len(e.PerPC))
}

// Package vpred implements value predictors.
//
// The paper's predictor (Section 5.2) is the Sazeides–Smith context-based
// (FCM) predictor: a first-level history table indexed by instruction PC
// holds a hashed context of the most recent 4 result values; the context
// indexes a second-level prediction table holding a 64-bit prediction and a
// 1-bit counter that guides replacement. Both tables have 64K direct-mapped
// entries. The history table is always updated; in immediate-update mode (I)
// it is updated with the correct value right after prediction, while in
// delayed-update mode (D) it is updated speculatively with the prediction at
// prediction time and the prediction table is trained at retirement.
//
// Last-value and stride predictors are provided for the design-space
// ablations discussed alongside the paper's related work.
package vpred

// Predictor is the interface between the pipeline and a value predictor.
//
// The timing simulator drives it in one of two disciplines:
//
//	immediate (I): pred, ck := Lookup(pc); TrainImmediate(pc, ck, actual)
//	delayed   (D): pred, ck := Lookup(pc); SpeculateHistory(pc, pred)
//	               ... at retirement: TrainDelayed(pc, ck, pred, actual)
//
// The cookie returned by Lookup captures whatever index state the predictor
// needs to train the right entry later (for the FCM, the second-level index
// live at prediction time).
type Predictor interface {
	// Lookup returns the predicted result for the instruction at pc.
	Lookup(pc int) (pred int64, cookie uint64)
	// TrainImmediate trains both levels with the correct value right after
	// prediction.
	TrainImmediate(pc int, cookie uint64, actual int64)
	// SpeculateHistory pushes the predicted value into the first-level
	// history at prediction time (delayed-update mode), so back-to-back
	// instances of the same instruction see advancing contexts.
	SpeculateHistory(pc int, pred int64)
	// TrainDelayed trains the prediction table at retirement
	// (delayed-update mode) and repairs the speculative history if the
	// prediction that advanced it was wrong.
	TrainDelayed(pc int, cookie uint64, pred, actual int64)
	// Reset restores initial state.
	Reset()
}

// FCMConfig parameterizes the context-based predictor.
type FCMConfig struct {
	HistoryBits    uint // log2 entries of the first-level (history) table; 16 in the paper
	PredictionBits uint // log2 entries of the second-level (prediction) table; 16 in the paper
	HistoryDepth   uint // values folded into the context; 4 in the paper
}

// DefaultFCMConfig returns the paper's 64K/64K, depth-4 configuration.
func DefaultFCMConfig() FCMConfig {
	return FCMConfig{HistoryBits: 16, PredictionBits: 16, HistoryDepth: 4}
}

type fcmEntry struct {
	value   int64
	counter uint8 // 1-bit replacement hint
}

// FCM is the two-level context-based predictor. In delayed-update mode the
// lookup history (hist) runs ahead speculatively while histArch tracks the
// architectural value sequence trained at retirement; a misprediction
// squashes the speculative history back to the architectural one, modeling
// the standard recovery of speculatively-updated predictor state.
type FCM struct {
	cfg        FCMConfig
	hist       []uint32   // per-PC speculative context
	histArch   []uint32   // per-PC architectural context (delayed mode)
	pred       []fcmEntry // context-indexed predictions
	bitsPerVal uint       // context bits contributed by each value
}

var _ Predictor = (*FCM)(nil)

// NewFCM builds a context-based predictor; it panics on a configuration
// whose context cannot hold HistoryDepth values (static misconfiguration).
func NewFCM(cfg FCMConfig) *FCM {
	if cfg.HistoryDepth == 0 || cfg.PredictionBits == 0 || cfg.HistoryBits == 0 {
		panic("vpred: FCMConfig fields must be positive")
	}
	bpv := cfg.PredictionBits / cfg.HistoryDepth
	if bpv == 0 {
		panic("vpred: PredictionBits must be >= HistoryDepth")
	}
	return &FCM{
		cfg:        cfg,
		hist:       make([]uint32, 1<<cfg.HistoryBits),
		histArch:   make([]uint32, 1<<cfg.HistoryBits),
		pred:       make([]fcmEntry, 1<<cfg.PredictionBits),
		bitsPerVal: bpv,
	}
}

// Config returns the predictor geometry.
func (f *FCM) Config() FCMConfig { return f.cfg }

func (f *FCM) pcIndex(pc int) uint32 {
	return uint32(pc) & (uint32(1)<<f.cfg.HistoryBits - 1)
}

// foldValue hashes a 64-bit value down to the context bits contributed per
// value, mixing all input bits so that small and large values spread.
func (f *FCM) foldValue(v int64) uint32 {
	x := uint64(v)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return uint32(x) & (uint32(1)<<f.bitsPerVal - 1)
}

// pushContext shifts v into context ctx, retiring the oldest value's bits.
func (f *FCM) pushContext(ctx uint32, v int64) uint32 {
	mask := uint32(1)<<f.cfg.PredictionBits - 1
	return ((ctx << f.bitsPerVal) | f.foldValue(v)) & mask
}

// Lookup implements Predictor. The cookie is the second-level index used.
func (f *FCM) Lookup(pc int) (int64, uint64) {
	ctx := f.hist[f.pcIndex(pc)]
	return f.pred[ctx].value, uint64(ctx)
}

// TrainImmediate implements Predictor.
func (f *FCM) TrainImmediate(pc int, cookie uint64, actual int64) {
	idx := f.pcIndex(pc)
	f.hist[idx] = f.pushContext(f.hist[idx], actual)
	f.trainEntry(uint32(cookie), actual)
}

// SpeculateHistory implements Predictor.
func (f *FCM) SpeculateHistory(pc int, pred int64) {
	idx := f.pcIndex(pc)
	f.hist[idx] = f.pushContext(f.hist[idx], pred)
}

// TrainDelayed implements Predictor.
func (f *FCM) TrainDelayed(pc int, cookie uint64, pred, actual int64) {
	idx := f.pcIndex(pc)
	f.histArch[idx] = f.pushContext(f.histArch[idx], actual)
	if pred != actual {
		// The speculative history consumed a wrong value; recover it to the
		// architectural sequence.
		f.hist[idx] = f.histArch[idx]
	}
	f.trainEntry(uint32(cookie), actual)
}

// trainEntry applies the 1-bit-counter replacement policy: a matching value
// sets the counter; a mismatch first clears the counter and only replaces
// the stored value once the counter is already clear.
func (f *FCM) trainEntry(ctx uint32, actual int64) {
	e := &f.pred[ctx]
	switch {
	case e.value == actual:
		e.counter = 1
	case e.counter == 1:
		e.counter = 0
	default:
		e.value = actual
		e.counter = 1
	}
}

// Reset implements Predictor.
func (f *FCM) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
		f.histArch[i] = 0
	}
	for i := range f.pred {
		f.pred[i] = fcmEntry{}
	}
}

// LastValue predicts that an instruction produces the same value as its
// previous dynamic instance (Lipasti et al.). Used as an ablation baseline.
type LastValue struct {
	bits  uint
	table []int64
}

var _ Predictor = (*LastValue)(nil)

// NewLastValue returns a last-value predictor with 1<<bits entries.
func NewLastValue(bits uint) *LastValue {
	return &LastValue{bits: bits, table: make([]int64, 1<<bits)}
}

func (l *LastValue) index(pc int) uint32 { return uint32(pc) & (uint32(1)<<l.bits - 1) }

// Lookup implements Predictor.
func (l *LastValue) Lookup(pc int) (int64, uint64) {
	idx := l.index(pc)
	return l.table[idx], uint64(idx)
}

// TrainImmediate implements Predictor.
func (l *LastValue) TrainImmediate(pc int, cookie uint64, actual int64) {
	l.table[uint32(cookie)] = actual
}

// SpeculateHistory implements Predictor: the last-value table *is* the
// history, so delayed mode inserts the prediction (a no-op value-wise, since
// the prediction is the table content) — nothing to do.
func (l *LastValue) SpeculateHistory(pc int, pred int64) {}

// TrainDelayed implements Predictor.
func (l *LastValue) TrainDelayed(pc int, cookie uint64, pred, actual int64) {
	l.table[uint32(cookie)] = actual
}

// Reset implements Predictor.
func (l *LastValue) Reset() {
	for i := range l.table {
		l.table[i] = 0
	}
}

// Stride predicts value + stride from the last two dynamic instances
// (Gabbay–Mendelson). Used as an ablation baseline.
type Stride struct {
	bits uint
	last []int64
	str  []int64
}

var _ Predictor = (*Stride)(nil)

// NewStride returns a stride predictor with 1<<bits entries.
func NewStride(bits uint) *Stride {
	return &Stride{bits: bits, last: make([]int64, 1<<bits), str: make([]int64, 1<<bits)}
}

func (s *Stride) index(pc int) uint32 { return uint32(pc) & (uint32(1)<<s.bits - 1) }

// Lookup implements Predictor.
func (s *Stride) Lookup(pc int) (int64, uint64) {
	idx := s.index(pc)
	return s.last[idx] + s.str[idx], uint64(idx)
}

// TrainImmediate implements Predictor.
func (s *Stride) TrainImmediate(pc int, cookie uint64, actual int64) {
	s.train(uint32(cookie), actual)
}

// SpeculateHistory implements Predictor. In delayed mode the last/stride
// state is only trained at retirement, so prediction time does nothing.
func (s *Stride) SpeculateHistory(pc int, pred int64) {}

// TrainDelayed implements Predictor.
func (s *Stride) TrainDelayed(pc int, cookie uint64, pred, actual int64) {
	s.train(uint32(cookie), actual)
}

func (s *Stride) train(idx uint32, actual int64) {
	s.str[idx] = actual - s.last[idx]
	s.last[idx] = actual
}

// Reset implements Predictor.
func (s *Stride) Reset() {
	for i := range s.last {
		s.last[i] = 0
		s.str[i] = 0
	}
}

package obs

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestWireDeltaRoundTrip is the algebra behind the fleet heartbeat: an
// observation stream split into arbitrary epochs, each epoch shipped as a
// JSON wire delta and applied remotely, must reproduce the registry a direct
// merge would have built — counters, gauges, and histograms bucket-exactly.
func TestWireDeltaRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		src := NewRegistry()    // the worker's live registry
		remote := NewRegistry() // the coordinator's merged view
		var prev *Registry

		epochs := 2 + rng.Intn(6)
		for e := 0; e < epochs; e++ {
			for i := 0; i < 1+rng.Intn(50); i++ {
				switch rng.Intn(3) {
				case 0:
					src.Counter("work.done").Add(rng.Int63n(100))
				case 1:
					src.Gauge("work.depth").Set(rng.Float64() * 100)
				default:
					src.Histogram("work.latency").Observe(rng.Int63n(1 << 20))
				}
			}
			// Snapshot, diff against last epoch, round-trip through JSON and
			// apply — exactly once, like one heartbeat.
			cur := src.Clone()
			delta := Diff(cur, prev)
			data, err := json.Marshal(delta)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			var decoded WireRegistry
			if err := json.Unmarshal(data, &decoded); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			remote.Apply(decoded)
			prev = cur
		}

		// The remote view must match a direct merge of the final registry.
		direct := NewRegistry()
		direct.Merge(src)
		if got, want := remote.String(), direct.String(); got != want {
			t.Errorf("seed %d: remote view diverged from direct merge:\n got:\n%s\nwant:\n%s", seed, got, want)
		}
		h, dh := remote.Histogram("work.latency"), direct.Histogram("work.latency")
		if h.Count() != dh.Count() || h.Sum() != dh.Sum() || h.Min() != dh.Min() || h.Max() != dh.Max() {
			t.Errorf("seed %d: histogram totals diverged: count %d/%d sum %d/%d min %d/%d max %d/%d",
				seed, h.Count(), dh.Count(), h.Sum(), dh.Sum(), h.Min(), dh.Min(), h.Max(), dh.Max())
		}
		for i := range h.counts {
			if h.counts[i] != dh.counts[i] {
				t.Fatalf("seed %d: bucket %d diverged: %d != %d", seed, i, h.counts[i], dh.counts[i])
			}
		}
	}
}

// TestWireDeltaEmptyEpoch: an epoch with no new observations must diff to an
// all-but-gauges-empty delta, and applying it must not disturb histograms.
func TestWireDeltaEmptyEpoch(t *testing.T) {
	src := NewRegistry()
	src.Counter("c").Add(5)
	src.Gauge("g").Set(2.5)
	src.Histogram("h").Observe(17)

	cur := src.Clone()
	d := Diff(cur, cur)
	if len(d.Counters) != 0 || len(d.Histograms) != 0 {
		t.Fatalf("idle diff not empty: %+v", d)
	}
	if d.Gauges["g"] != 2.5 {
		t.Fatalf("gauges should ship raw every epoch, got %+v", d.Gauges)
	}

	remote := NewRegistry()
	remote.Apply(Diff(cur, nil))
	remote.Apply(d) // idle heartbeat
	if got := remote.Histogram("h").Count(); got != 1 {
		t.Fatalf("idle apply changed histogram count: %d", got)
	}
	if got := remote.Counter("c").Value(); got != 5 {
		t.Fatalf("idle apply changed counter: %d", got)
	}
}

package obs

import "math/bits"

// Histogram is a log-bucketed histogram of non-negative integer samples
// (cycle counts, occupancies, depths). Each power-of-two octave [2^e, 2^(e+1))
// is split into 4 linear sub-buckets, so a bucket's relative width — and
// therefore the worst-case relative error of Quantile — is at most 25%.
// Values below 4 get exact unit-width buckets; negative values clamp into
// bucket 0. Count, Sum, Min and Max are tracked exactly.
//
// The zero value is NOT ready to use; create with NewHistogram (or through
// Registry.Histogram).
type Histogram struct {
	counts []uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// histSubBits is log2 of the sub-buckets per octave.
const histSubBits = 2

// numHistBuckets covers int64 values: 4 exact buckets for 0..3, then 4
// sub-buckets for each octave 2^2 .. 2^62.
const numHistBuckets = 4 + (63-histSubBits)*4

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, numHistBuckets), min: 1<<63 - 1}
}

// BucketIndex returns the bucket a value lands in; exported for tests.
func BucketIndex(v int64) int {
	if v < 4 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= 2
	sub := int(uint64(v)>>(uint(exp)-histSubBits)) & 3
	return 4 + (exp-2)*4 + sub
}

// BucketLowerBound returns the smallest value mapping to bucket i; exported
// for tests and for rendering bucket boundaries.
func BucketLowerBound(i int) int64 {
	if i < 4 {
		return int64(i)
	}
	exp := (i-4)/4 + 2
	sub := (i - 4) % 4
	return int64(4+sub) << (uint(exp) - histSubBits)
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.counts[BucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// ObserveN records n identical samples of value v in one step. It is the
// bulk form of Observe, for mirroring externally-bucketed recorders (e.g.
// the load generator's HDR histogram) without replaying every sample.
func (h *Histogram) ObserveN(v int64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[BucketIndex(v)] += n
	h.count += n
	h.sum += v * int64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the exact mean of all samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observed sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (q in [0,1]) as the lower bound of the
// bucket holding the rank-ceil(q*count) sample, clamped to the exact min and
// max. The estimate is within 25% relative error of the true value by bucket
// construction, and exact for values below 4.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.Min())
	}
	if q >= 1 {
		return float64(h.Max())
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			v := BucketLowerBound(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return float64(v)
		}
	}
	return float64(h.Max())
}

// Merge folds every sample of o into h, as if each had been Observed here.
// Bucket counts and sums add exactly; min/max tighten to the combined range.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Clone returns an independent deep copy of h.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		counts: make([]uint64, len(h.counts)),
		count:  h.count,
		sum:    h.sum,
		min:    h.min,
		max:    h.max,
	}
	copy(c.counts, h.counts)
	return c
}

// Buckets calls fn for every non-empty bucket with its inclusive lower
// bound, exclusive upper bound, and count, in ascending value order.
func (h *Histogram) Buckets(fn func(lo, hi int64, count uint64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		hi := int64(1<<63 - 1)
		if i+1 < numHistBuckets {
			hi = BucketLowerBound(i + 1)
		}
		fn(BucketLowerBound(i), hi, c)
	}
}

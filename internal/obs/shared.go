package obs

import "sync"

// SharedRegistry is the goroutine-safe aggregation point of the metrics
// layer: a mutex-guarded Registry that concurrent producers publish into and
// concurrent consumers read via deep-copy snapshots. It exists so the
// harness worker pool and the obsweb HTTP server can meet without perturbing
// the zero-alloc single-goroutine hot path — pipelines keep their private
// Registry and fold it in with Merge when they finish, while live trackers
// (progress counters, server-side gauges) publish through the locked
// mutators below.
//
// Every method may be called from any goroutine. Readers never see a
// half-updated batch: use Do to publish several related values under one
// critical section, and Snapshot to read a consistent copy.
type SharedRegistry struct {
	mu  sync.Mutex
	reg *Registry
}

// NewSharedRegistry returns an empty shared registry.
func NewSharedRegistry() *SharedRegistry {
	return &SharedRegistry{reg: NewRegistry()}
}

// Merge folds a single-goroutine registry into the shared one (counters add,
// gauges overwrite, histograms merge sample-exactly). The source must be
// quiescent — merge a pipeline's registry after its run completes, and at
// most once, or its counters double-count.
func (s *SharedRegistry) Merge(r *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Merge(r)
}

// Snapshot returns a deep copy of the current state. The copy is exclusively
// the caller's: serialize it, diff it, or mutate it freely without further
// locking.
func (s *SharedRegistry) Snapshot() *Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.Clone()
}

// Do runs fn with exclusive access to the underlying registry, so one
// publisher can update several metrics atomically with respect to Snapshot.
// fn must not retain the *Registry or any metric handle past its return.
func (s *SharedRegistry) Do(fn func(r *Registry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.reg)
}

// Add increments the named counter, creating it on first use.
func (s *SharedRegistry) Add(name string, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Counter(name).Add(n)
}

// SetCounter overwrites the named counter, for mirroring an externally
// accumulated total (e.g. trace-cache hits) into the shared registry.
func (s *SharedRegistry) SetCounter(name string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Counter(name).Set(v)
}

// SetGauge overwrites the named gauge, creating it on first use.
func (s *SharedRegistry) SetGauge(name string, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Gauge(name).Set(v)
}

// Observe records one sample into the named histogram, creating it on first
// use.
func (s *SharedRegistry) Observe(name string, v int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Histogram(name).Observe(v)
}

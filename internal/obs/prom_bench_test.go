package obs

import (
	"bytes"
	"testing"
)

// benchSharedRegistry builds a shared registry with a sweep-shaped
// population: the Stats counter mirrors, a few tracker gauges, and three
// histograms with samples spread across many octaves.
func benchSharedRegistry() *SharedRegistry {
	s := NewSharedRegistry()
	s.Do(func(r *Registry) {
		for _, name := range []string{
			"cycles", "retired", "dispatched", "fetch_stall_cycles",
			"window_full_stalls", "cond_branches", "branch_mispredicts",
			"loads", "stores", "store_forwards", "predictions", "speculated",
			"pred_correct_high", "pred_correct_low", "pred_incorrect_high",
			"pred_incorrect_low", "invalidation_waves", "nullified",
			"reissues", "complete_squashes", "issues",
			"sweep.specs_total", "sweep.specs_completed", "sweep.specs_failed",
		} {
			r.Counter(name).Set(123456789)
		}
		for _, name := range []string{
			"sweep.specs_inflight", "sweep.eta_seconds",
			"sweep.spec_seconds_ewma", "sweep.trace_cache_hit_rate",
		} {
			r.Gauge(name).Set(3.25)
		}
		for _, name := range []string{"sweep.spec_cycles", "window.occupancy", "retire.latency"} {
			h := r.Histogram(name)
			for v := int64(0); v < 4096; v += 3 {
				h.Observe(v * v)
			}
		}
	})
	return s
}

// BenchmarkSharedRegistrySnapshot measures the deep-copy read path the
// obsweb server takes on every /metrics scrape and SSE frame. Its allocs/op
// budget in BENCH_BASELINE.json keeps the snapshot from growing hidden
// per-metric allocations.
func BenchmarkSharedRegistrySnapshot(b *testing.B) {
	s := benchSharedRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Snapshot() == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkPromExposition measures rendering a snapshot as Prometheus text,
// the other half of a /metrics scrape.
func BenchmarkPromExposition(b *testing.B) {
	snap := benchSharedRegistry().Snapshot()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WritePrometheus(&buf, snap, "valuespec"); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

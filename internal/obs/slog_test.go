package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "job", "j000001")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %q", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "job=j000001") {
		t.Errorf("warn line missing or unattributed: %q", out)
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("job submitted", "job", "j000001", "spec_hash", "cafe")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("non-JSON log line %q: %v", buf.String(), err)
	}
	if rec["msg"] != "job submitted" || rec["job"] != "j000001" || rec["spec_hash"] != "cafe" {
		t.Errorf("JSON record = %v, want msg/job/spec_hash fields", rec)
	}
}

func TestNewLoggerRejectsUnknown(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "loud", "text"); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestNopLogger(t *testing.T) {
	lg := NopLogger()
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Error("nop logger claims to be enabled at error level")
	}
	lg.Error("goes nowhere", "k", "v") // must not panic
}

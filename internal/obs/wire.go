package obs

import "sort"

// Wire forms: the JSON-serializable algebraic delta of a Registry, built for
// the fleet's heartbeat path. A worker snapshots its registry, diffs it
// against the previous snapshot, and ships only the delta; the coordinator
// applies the delta into its shared registry. Because counters diff/add
// exactly and histograms diff/add bucket-wise (the bucket layout is identical
// on both ends), the merged fleet-wide registry equals the registry a single
// process would have accumulated — the same Θ(commits) coalescing the journal
// applies to durability, applied to telemetry.

// WireBucket is one non-empty histogram bucket on the wire, addressed by
// bucket index (see BucketIndex/BucketLowerBound).
type WireBucket struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// WireHistogram is a histogram delta: per-bucket count deltas plus exact
// count and sum deltas. Min and Max are the sender's running totals (valid
// bounds for the combined distribution, not deltas).
type WireHistogram struct {
	Buckets []WireBucket `json:"buckets,omitempty"`
	Count   uint64       `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
}

// WireRegistry is a registry delta: counter increments, raw gauge values
// (last write wins, like Merge), and histogram bucket deltas.
type WireRegistry struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]WireHistogram `json:"histograms,omitempty"`
}

// Empty reports whether the delta carries nothing.
func (w WireRegistry) Empty() bool {
	return len(w.Counters) == 0 && len(w.Gauges) == 0 && len(w.Histograms) == 0
}

// Diff returns the algebraic delta that takes prev to cur: counter and
// histogram increments since prev, gauges at cur's raw value. prev may be nil
// (the first epoch diffs against zero). Zero counter deltas and empty
// histogram deltas are omitted, so an idle epoch serializes to "{}" plus the
// gauges.
func Diff(cur, prev *Registry) WireRegistry {
	var w WireRegistry
	for _, name := range cur.order {
		switch {
		case cur.counters[name] != nil:
			v := cur.counters[name].Value()
			if prev != nil {
				if p, ok := prev.counters[name]; ok {
					v -= p.Value()
				}
			}
			if v != 0 {
				if w.Counters == nil {
					w.Counters = make(map[string]int64)
				}
				w.Counters[name] = v
			}
		case cur.gauges[name] != nil:
			if w.Gauges == nil {
				w.Gauges = make(map[string]float64)
			}
			w.Gauges[name] = cur.gauges[name].Value()
		default:
			h := cur.hists[name]
			var p *Histogram
			if prev != nil {
				p = prev.hists[name]
			}
			d := diffHistogram(h, p)
			if d.Count == 0 {
				continue
			}
			if w.Histograms == nil {
				w.Histograms = make(map[string]WireHistogram)
			}
			w.Histograms[name] = d
		}
	}
	return w
}

// diffHistogram subtracts prev's bucket counts from cur's. Buckets are
// monotone (samples only accumulate), so per-bucket subtraction is exact.
func diffHistogram(cur, prev *Histogram) WireHistogram {
	d := WireHistogram{Min: cur.Min(), Max: cur.Max()}
	for i, c := range cur.counts {
		if prev != nil {
			c -= prev.counts[i]
		}
		if c != 0 {
			d.Buckets = append(d.Buckets, WireBucket{Index: i, Count: c})
		}
	}
	d.Count = cur.count
	d.Sum = cur.sum
	if prev != nil {
		d.Count -= prev.count
		d.Sum -= prev.sum
	}
	return d
}

// Apply folds a wire delta into r: counters add, gauges overwrite, histogram
// bucket deltas add with min/max tightened to the sender's bounds. Applying
// each epoch's delta exactly once reproduces the sender's registry as if it
// had been merged directly. Names are applied in sorted order so first-sight
// registration order — and therefore the exposition — stays deterministic.
func (r *Registry) Apply(w WireRegistry) {
	for _, name := range sortedKeys(w.Counters) {
		r.Counter(name).Add(w.Counters[name])
	}
	for _, name := range sortedKeys(w.Gauges) {
		r.Gauge(name).Set(w.Gauges[name])
	}
	for _, name := range sortedKeys(w.Histograms) {
		wh := w.Histograms[name]
		h := r.Histogram(name)
		for _, b := range wh.Buckets {
			if b.Index >= 0 && b.Index < len(h.counts) {
				h.counts[b.Index] += b.Count
			}
		}
		h.count += wh.Count
		h.sum += wh.Sum
		if wh.Count > 0 {
			if wh.Min < h.min {
				h.min = wh.Min
			}
			if wh.Max > h.max {
				h.max = wh.Max
			}
		}
	}
}

// Apply folds a wire delta into the shared registry under its lock.
func (s *SharedRegistry) Apply(w WireRegistry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Apply(w)
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package obs

import (
	"testing"
)

func seriesPoints(s *TimeSeries) []Point { return s.Points(nil) }

func TestTimeSeriesCapacityNeverExceeded(t *testing.T) {
	for _, capacity := range []int{4, 7, 32, 100} {
		s := NewTimeSeries(capacity)
		for i := 0; i < 10000; i++ {
			s.Append(int64(i), float64(i))
			if s.Len() > s.Cap() {
				t.Fatalf("cap %d: after %d appends Len=%d exceeds Cap=%d",
					capacity, i+1, s.Len(), s.Cap())
			}
			if got := len(seriesPoints(s)); got != s.Len() {
				t.Fatalf("cap %d: Len()=%d but Points returned %d", capacity, s.Len(), got)
			}
		}
		if s.Appended() != 10000 {
			t.Fatalf("Appended=%d want 10000", s.Appended())
		}
	}
}

func TestTimeSeriesEndpointsPreserved(t *testing.T) {
	s := NewTimeSeries(8)
	const n = 5000
	for i := 0; i < n; i++ {
		s.Append(int64(i*3), float64(i))

		first, ok := s.First()
		if !ok || first.X != 0 {
			t.Fatalf("after %d appends First=%+v ok=%v, want X=0", i+1, first, ok)
		}
		last, ok := s.Last()
		if !ok || last.X != int64(i*3) {
			t.Fatalf("after %d appends Last=%+v ok=%v, want X=%d", i+1, last, ok, i*3)
		}
		pts := seriesPoints(s)
		if pts[0].X != 0 || pts[len(pts)-1].X != int64(i*3) {
			t.Fatalf("after %d appends Points endpoints [%d, %d], want [0, %d]",
				i+1, pts[0].X, pts[len(pts)-1].X, i*3)
		}
	}
}

func TestTimeSeriesPointsAscendingAndCoverage(t *testing.T) {
	s := NewTimeSeries(16)
	const n = 4096
	for i := 0; i < n; i++ {
		s.Append(int64(i), float64(i))
	}
	pts := seriesPoints(s)
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatalf("points not strictly ascending at %d: %d then %d", i, pts[i-1].X, pts[i].X)
		}
	}
	// Decimation keeps points on a uniform stride: the largest gap between
	// retained points must stay within 2x the stride (the endpoint may sit
	// mid-stride).
	stride := s.Stride()
	for i := 1; i < len(pts); i++ {
		if gap := pts[i].X - pts[i-1].X; gap > 2*stride {
			t.Fatalf("gap %d at point %d exceeds 2*stride=%d", gap, i, 2*stride)
		}
	}
}

func TestTimeSeriesMergeAssociativeUnderCapacity(t *testing.T) {
	mk := func(xs ...int64) *TimeSeries {
		s := NewTimeSeries(64)
		for _, x := range xs {
			s.Append(x, float64(x)*0.5)
		}
		return s
	}
	a := mk(0, 10, 20, 30)
	b := mk(5, 15, 25)
	c := mk(2, 12, 22, 32, 42)

	// (a ⊔ b) ⊔ c
	left := a.Clone()
	left.Merge(b)
	left.Merge(c)
	// a ⊔ (b ⊔ c)
	bc := b.Clone()
	bc.Merge(c)
	right := a.Clone()
	right.Merge(bc)

	lp, rp := seriesPoints(left), seriesPoints(right)
	if len(lp) != len(rp) {
		t.Fatalf("associativity: %d vs %d points", len(lp), len(rp))
	}
	for i := range lp {
		if lp[i] != rp[i] {
			t.Fatalf("associativity: point %d differs: %+v vs %+v", i, lp[i], rp[i])
		}
	}
	if left.Appended() != right.Appended() {
		t.Fatalf("associativity: appended %d vs %d", left.Appended(), right.Appended())
	}
}

func TestTimeSeriesMergeRespectsCapacity(t *testing.T) {
	a := NewTimeSeries(8)
	b := NewTimeSeries(8)
	for i := 0; i < 1000; i++ {
		a.Append(int64(2*i), 1)
		b.Append(int64(2*i+1), 2)
	}
	a.Merge(b)
	if a.Len() > a.Cap() {
		t.Fatalf("after merge Len=%d exceeds Cap=%d", a.Len(), a.Cap())
	}
	pts := seriesPoints(a)
	if pts[0].X != 0 {
		t.Fatalf("merge lost first point: got X=%d", pts[0].X)
	}
	if pts[len(pts)-1].X != 1999 {
		t.Fatalf("merge lost last point: got X=%d", pts[len(pts)-1].X)
	}
	if a.Appended() != 2000 {
		t.Fatalf("merge Appended=%d want 2000", a.Appended())
	}
}

func TestTimeSeriesMergeIntoEmpty(t *testing.T) {
	a := NewTimeSeries(16)
	b := NewTimeSeries(16)
	for i := 0; i < 5; i++ {
		b.Append(int64(i), float64(i))
	}
	a.Merge(b)
	if a.Len() != 5 {
		t.Fatalf("Len=%d want 5", a.Len())
	}
	// Merging an empty series is a no-op.
	before := seriesPoints(a)
	a.Merge(NewTimeSeries(16))
	after := seriesPoints(a)
	if len(before) != len(after) {
		t.Fatalf("merge of empty changed length %d -> %d", len(before), len(after))
	}
}

func TestTimeSeriesCloneIndependent(t *testing.T) {
	s := NewTimeSeries(16)
	for i := 0; i < 10; i++ {
		s.Append(int64(i), float64(i))
	}
	c := s.Clone()
	s.Append(100, 100)
	if c.Len() != 10 {
		t.Fatalf("clone tracked appends to original: Len=%d", c.Len())
	}
	c.Append(200, 200)
	if last, _ := s.Last(); last.X != 100 {
		t.Fatalf("original tracked appends to clone: Last.X=%d", last.X)
	}
}

func TestTimeSeriesNoAllocAfterConstruction(t *testing.T) {
	s := NewTimeSeries(32)
	var x int64
	allocs := testing.AllocsPerRun(2000, func() {
		s.Append(x, 1)
		x++
	})
	if allocs != 0 {
		t.Fatalf("Append allocates: %v allocs/op", allocs)
	}
}

func TestSpecOutcomes(t *testing.T) {
	a := SpecOutcomes{Predictions: 10, CorrectUsed: 4, WrongUsed: 1, CorrectUnused: 3, WrongUnused: 2}
	if !a.Reconciled() {
		t.Fatalf("expected reconciled: %+v total=%d", a, a.Total())
	}
	b := SpecOutcomes{Predictions: 5, CorrectUsed: 2, WrongUsed: 2, CorrectUnused: 0, WrongUnused: 1}
	a.Merge(b)
	if a.Predictions != 15 || a.Total() != 15 || !a.Reconciled() {
		t.Fatalf("merge broke reconciliation: %+v total=%d", a, a.Total())
	}
	a.WrongUnused++
	if a.Reconciled() {
		t.Fatalf("expected unreconciled after skew")
	}
}

func TestHistogramObserveN(t *testing.T) {
	h1 := NewHistogram()
	h2 := NewHistogram()
	vals := []int64{0, 3, 17, 1024, 99999}
	for _, v := range vals {
		for i := 0; i < 7; i++ {
			h1.Observe(v)
		}
		h2.ObserveN(v, 7)
	}
	h2.ObserveN(5, 0) // no-op
	if h1.Count() != h2.Count() || h1.Sum() != h2.Sum() ||
		h1.Min() != h2.Min() || h1.Max() != h2.Max() {
		t.Fatalf("ObserveN mismatch: count %d/%d sum %d/%d min %d/%d max %d/%d",
			h1.Count(), h2.Count(), h1.Sum(), h2.Sum(), h1.Min(), h2.Min(), h1.Max(), h2.Max())
	}
	for q := 0.0; q <= 1.0; q += 0.25 {
		if h1.Quantile(q) != h2.Quantile(q) {
			t.Fatalf("quantile %v mismatch: %v vs %v", q, h1.Quantile(q), h2.Quantile(q))
		}
	}
}

package obs

import (
	"io"
	"sync"
	"time"
)

// spanAttrCap is how many attributes one span can carry. Attributes beyond
// the capacity are counted, not stored, so emitting never allocates.
const spanAttrCap = 8

// DefaultTracerSpans is the ring capacity NewTracer uses for n <= 0.
const DefaultTracerSpans = 4096

// SpanAttr is one key/value annotation on a span (a job id, a spec hash, a
// phase breakdown). Values are plain strings so recording one never
// allocates beyond what the caller already holds.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed timed interval of a request's lifecycle: a named
// [Start, End) window on a track (the correlation key — a job id, a route).
// Spans are plain values; the Tracer hands out copies, never ring-internal
// pointers.
type Span struct {
	ID    uint64 // emission sequence number, 1-based, monotonic per tracer
	Track string // correlation key: spans with equal tracks form one timeline
	Name  string
	Start int64 // Unix nanoseconds
	End   int64 // Unix nanoseconds

	attrs     [spanAttrCap]SpanAttr
	nattrs    uint8
	truncated uint8 // attributes dropped beyond spanAttrCap
}

// Duration returns the span's length.
func (s *Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Attrs returns the span's attributes in the order they were set. The slice
// aliases the span's fixed storage; copy it to keep it past the span.
func (s *Span) Attrs() []SpanAttr { return s.attrs[:s.nattrs] }

// Attr returns the value of the named attribute, if set.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.attrs[:s.nattrs] {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// TruncatedAttrs returns how many attributes were dropped because the span's
// fixed attribute storage was full.
func (s *Span) TruncatedAttrs() int { return int(s.truncated) }

// Tracer is a bounded, goroutine-safe recorder of completed spans: a
// fixed-capacity ring that the newest span overwrites when full, so a
// long-running daemon holds the most recent window of activity in constant
// memory. A nil *Tracer is valid everywhere and records nothing — Start and
// Emit on a nil tracer cost one branch and zero allocations, the same
// contract as the pipeline's nil-observer fast path.
type Tracer struct {
	mu      sync.Mutex
	now     func() int64 // injectable clock (Unix nanoseconds), for tests
	buf     []Span
	head    int // next write position
	n       int // valid spans, <= len(buf)
	nextID  uint64
	dropped int64
}

// NewTracer returns a tracer keeping the newest capacity spans (<= 0 selects
// DefaultTracerSpans). The ring is allocated up front; recording allocates
// nothing.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerSpans
	}
	return &Tracer{
		now: func() int64 { return time.Now().UnixNano() },
		buf: make([]Span, capacity),
	}
}

// Enabled reports whether the tracer records anything; false for nil.
func (t *Tracer) Enabled() bool { return t != nil }

// SpanRef is an in-progress span started by Tracer.Start. It is a plain
// stack value: annotate it with Attr and close it with End, which records
// the completed span. The zero SpanRef (from a nil tracer) is inert.
type SpanRef struct {
	span Span
	t    *Tracer
}

// Start opens a span on track with the tracer's clock. On a nil tracer it
// returns an inert ref.
func (t *Tracer) Start(track, name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return SpanRef{t: t, span: Span{Track: track, Name: name, Start: t.now()}}
}

// Attr annotates the span; attributes beyond the fixed capacity are counted
// as truncated rather than stored. No-op on an inert ref.
func (s *SpanRef) Attr(key, value string) {
	if s.t == nil {
		return
	}
	if int(s.span.nattrs) == spanAttrCap {
		s.span.truncated++
		return
	}
	s.span.attrs[s.span.nattrs] = SpanAttr{Key: key, Value: value}
	s.span.nattrs++
}

// End closes the span at the tracer's clock and records it.
func (s *SpanRef) End() {
	if s.t == nil {
		return
	}
	s.span.End = s.t.now()
	s.t.record(&s.span)
	s.t = nil // a second End is a no-op
}

// Emit records one pre-measured span directly, for intervals whose
// boundaries were observed elsewhere (a job's queue wait between its
// persisted submit and start timestamps). Attributes beyond the span
// capacity are counted as truncated. No-op on a nil tracer.
func (t *Tracer) Emit(track, name string, start, end time.Time, attrs ...SpanAttr) {
	if t == nil {
		return
	}
	sp := Span{Track: track, Name: name, Start: start.UnixNano(), End: end.UnixNano()}
	for _, a := range attrs {
		if int(sp.nattrs) == spanAttrCap {
			sp.truncated++
			continue
		}
		sp.attrs[sp.nattrs] = a
		sp.nattrs++
	}
	t.record(&sp)
}

// record stamps an id on the completed span and writes it into the ring.
func (t *Tracer) record(sp *Span) {
	t.mu.Lock()
	t.nextID++
	sp.ID = t.nextID
	t.buf[t.head] = *sp
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns how many spans the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many spans the ring has overwritten since creation.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns copies of the buffered spans in emission order (oldest
// first), restricted to one track when track is non-empty. A nil tracer
// returns nil.
func (t *Tracer) Spans(track string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		sp := &t.buf[(start+i)%len(t.buf)]
		if track != "" && sp.Track != track {
			continue
		}
		out = append(out, *sp)
	}
	return out
}

// ChromeTrace converts completed spans into a Chrome trace: one process
// ("valuespec spans"), one thread per distinct track (tids in order of first
// appearance), one complete slice per span with its attributes as args.
// Timestamps are rebased to the earliest span start and expressed in
// microseconds, so the viewer's axis starts at zero. The output depends only
// on the spans, making the export golden-testable.
func ChromeTrace(spans []Span) *Trace {
	tr := &Trace{}
	if len(spans) == 0 {
		return tr
	}
	base := spans[0].Start
	for _, sp := range spans {
		if sp.Start < base {
			base = sp.Start
		}
	}
	const pid = 1
	tr.ProcessName(pid, "valuespec spans")
	tids := make(map[string]int)
	for _, sp := range spans {
		if _, ok := tids[sp.Track]; !ok {
			tid := len(tids) + 1
			tids[sp.Track] = tid
			tr.ThreadName(pid, tid, sp.Track)
		}
	}
	for i := range spans {
		sp := &spans[i]
		var args map[string]any
		if sp.nattrs > 0 {
			args = make(map[string]any, sp.nattrs)
			for _, a := range sp.Attrs() {
				args[a.Key] = a.Value
			}
		}
		tr.Complete(pid, tids[sp.Track], sp.Name,
			(sp.Start-base)/1000, (sp.End-sp.Start)/1000, args)
	}
	return tr
}

// WriteChromeTrace writes spans as Chrome trace JSON, ready for Perfetto or
// chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return ChromeTrace(spans).WriteJSON(w)
}

package obs

// Sample is one snapshot of the registry: the cycle it was taken at and the
// scalar values in Registry.Columns order. Counter columns hold the delta
// since the previous retained sample, so summing a counter column over a
// complete series reconciles exactly with the counter's final value.
type Sample struct {
	Cycle  int64
	Values []float64
}

// IntervalSampler snapshots a registry every Interval cycles into a
// ring-buffered time series. With a positive capacity the ring keeps the
// most recent samples and counts the overwritten ones in Dropped; capacity
// <= 0 retains everything.
type IntervalSampler struct {
	reg      *Registry
	interval int64
	capacity int

	cols    []string
	samples []Sample
	next    int // ring write position (capacity > 0)
	n       int
	dropped int64

	lastCycle int64 // cycle of the most recent sample
	prev      map[string]int64
}

// NewIntervalSampler creates a sampler over reg. interval < 1 is treated as
// 1 (sample every cycle).
func NewIntervalSampler(reg *Registry, interval int64, capacity int) *IntervalSampler {
	if interval < 1 {
		interval = 1
	}
	return &IntervalSampler{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		prev:     make(map[string]int64),
	}
}

// Interval returns the sampling period in cycles.
func (s *IntervalSampler) Interval() int64 { return s.interval }

// Due reports whether a full interval has elapsed since the last sample.
func (s *IntervalSampler) Due(cycle int64) bool {
	return cycle-s.lastCycle >= s.interval
}

// Pending reports whether any cycles have elapsed since the last sample,
// i.e. whether a final Sample is needed to cover the run's tail.
func (s *IntervalSampler) Pending(cycle int64) bool { return cycle > s.lastCycle }

// Sample takes a snapshot labeled with the given cycle.
func (s *IntervalSampler) Sample(cycle int64) {
	if s.cols == nil {
		s.cols = s.reg.Columns()
	}
	sm := Sample{Cycle: cycle, Values: s.reg.row(make([]float64, 0, len(s.cols)), s.prev)}
	s.lastCycle = cycle
	if s.capacity <= 0 {
		s.samples = append(s.samples, sm)
		s.n++
		return
	}
	if s.samples == nil {
		s.samples = make([]Sample, s.capacity)
	}
	if s.n == s.capacity {
		s.dropped++
	} else {
		s.n++
	}
	s.samples[s.next] = sm
	s.next = (s.next + 1) % s.capacity
}

// Flush takes a final snapshot of the partial interval ending at cycle, if
// any cycles have elapsed since the last sample.
func (s *IntervalSampler) Flush(cycle int64) {
	if cycle > s.lastCycle {
		s.Sample(cycle)
	}
}

// Columns returns the scalar column names of each sample, in order.
func (s *IntervalSampler) Columns() []string {
	if s.cols == nil {
		s.cols = s.reg.Columns()
	}
	out := make([]string, len(s.cols))
	copy(out, s.cols)
	return out
}

// Samples returns the retained samples oldest-first.
func (s *IntervalSampler) Samples() []Sample {
	out := make([]Sample, 0, s.n)
	if s.capacity <= 0 || s.n < s.capacity {
		return append(out, s.samples[:s.n]...)
	}
	out = append(out, s.samples[s.next:]...)
	return append(out, s.samples[:s.next]...)
}

// Len returns the number of retained samples.
func (s *IntervalSampler) Len() int { return s.n }

// Dropped returns how many samples were overwritten by ring wraparound.
func (s *IntervalSampler) Dropped() int64 { return s.dropped }

// Package obs is the simulator's observability layer: a zero-dependency
// metrics registry (counters, gauges, log-bucketed histograms), an interval
// sampler that turns the registry into a ring-buffered time series, a Chrome
// trace-event builder for chrome://tracing / Perfetto, and a wall-time phase
// timer for profiling the simulation loop itself.
//
// The package deliberately knows nothing about the pipeline: internal/cpu
// publishes into it, internal/report serializes out of it. With the single
// exception of SharedRegistry — the mutex-guarded aggregation point that
// cross-goroutine consumers (the harness progress tracker, the obsweb
// server) read through Snapshot — none of the types are goroutine-safe; each
// simulation owns its own registry, matching the one-pipeline-per-goroutine
// concurrency model of the harness, and hands it to a SharedRegistry via
// Merge only when the run is done.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v int64
}

// Add increases the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Set overwrites the counter value; used by publishers that mirror an
// externally accumulated total (e.g. cpu.Stats) into the registry.
func (c *Counter) Set(v int64) { c.v = v }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous floating-point measurement.
type Gauge struct {
	v float64
}

// Set overwrites the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry is an ordered collection of named metrics. Names are unique
// across all three kinds; lookups create on first use and iteration follows
// registration order so serialized output is deterministic.
type Registry struct {
	order    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func (r *Registry) checkNew(name string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// Counter returns the counter with the given name, creating it on first use.
// It panics if the name is registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkNew(name)
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkNew(name)
	g := &Gauge{}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkNew(name)
	h := NewHistogram()
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// Names returns the metric names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Columns returns the flattened scalar column names the registry expands to
// when sampled: one column per counter and gauge, and count/mean/p50/p90/
// p99/max columns per histogram.
func (r *Registry) Columns() []string {
	var cols []string
	for _, name := range r.order {
		if _, ok := r.hists[name]; ok {
			for _, s := range histColumns {
				cols = append(cols, name+"."+s)
			}
			continue
		}
		cols = append(cols, name)
	}
	return cols
}

var histColumns = []string{"count", "mean", "p50", "p90", "p99", "max"}

// row appends the current scalar values in column order. Counters are
// reported as deltas against prev (keyed by name), which the caller
// accumulates so that summed interval rows reconcile with final totals.
func (r *Registry) row(dst []float64, prev map[string]int64) []float64 {
	for _, name := range r.order {
		if c, ok := r.counters[name]; ok {
			v := c.Value()
			dst = append(dst, float64(v-prev[name]))
			prev[name] = v
			continue
		}
		if g, ok := r.gauges[name]; ok {
			dst = append(dst, g.Value())
			continue
		}
		h := r.hists[name]
		dst = append(dst,
			float64(h.Count()), h.Mean(),
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99),
			float64(h.Max()))
	}
	return dst
}

// Row appends the current scalar values in Columns order to dst. Counters
// are reported as deltas against prev (keyed by name, updated in place), so
// a caller sampling a sequence of snapshots accumulates interval rows that
// sum back to the final totals; gauges and histogram summaries report raw.
func (r *Registry) Row(dst []float64, prev map[string]int64) []float64 {
	return r.row(dst, prev)
}

// Merge folds every metric of o into r, creating names on first sight (in
// o's registration order) and panicking on kind conflicts. Counters add,
// gauges take o's value (last merge wins), histograms merge sample-exactly.
// Merge each source registry at most once per aggregation epoch: merging the
// same counters twice double-counts them.
func (r *Registry) Merge(o *Registry) {
	for _, name := range o.order {
		switch {
		case o.counters[name] != nil:
			r.Counter(name).Add(o.counters[name].Value())
		case o.gauges[name] != nil:
			r.Gauge(name).Set(o.gauges[name].Value())
		default:
			r.Histogram(name).Merge(o.hists[name])
		}
	}
}

// Clone returns an independent deep copy of r, preserving registration
// order. Mutating either registry afterwards leaves the other untouched.
func (r *Registry) Clone() *Registry {
	c := NewRegistry()
	c.order = append(c.order, r.order...)
	for name, v := range r.counters {
		c.counters[name] = &Counter{v: v.v}
	}
	for name, v := range r.gauges {
		c.gauges[name] = &Gauge{v: v.v}
	}
	for name, h := range r.hists {
		c.hists[name] = h.Clone()
	}
	return c
}

// String renders a sorted one-line-per-metric summary, for debugging.
func (r *Registry) String() string {
	names := r.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(&b, "%s %d\n", name, r.counters[name].Value())
		case r.gauges[name] != nil:
			fmt.Fprintf(&b, "%s %g\n", name, r.gauges[name].Value())
		default:
			h := r.hists[name]
			fmt.Fprintf(&b, "%s count=%d mean=%.2f p50=%.0f p99=%.0f max=%d\n",
				name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
		}
	}
	return b.String()
}

package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestPromExpositionGolden pins the exposition output byte-for-byte for a
// fixed registry: three counters (one already carrying the _total suffix,
// which must not be doubled), a gauge, a histogram whose samples cover the
// exact low buckets, a mid octave, and a wide octave, and the obsweb
// middleware's dotted http.* names, whose sanitized forms dashboards key on.
func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("retired").Set(12345)
	r.Counter("trace_cache.hits").Set(7)
	r.Counter("sweep.specs_total").Set(104)
	r.Gauge("sweep.eta_seconds").Set(1.5)
	h := r.Histogram("sweep.spec_cycles")
	for _, v := range []int64{0, 3, 17, 1000} {
		h.Observe(v)
	}
	r.Gauge("http.inflight").Set(1)
	r.Counter("http.responses.metrics.2xx").Set(3)
	r.Histogram("http.request_us.metrics").Observe(17)

	const want = `# TYPE valuespec_retired_total counter
valuespec_retired_total 12345
# TYPE valuespec_trace_cache_hits_total counter
valuespec_trace_cache_hits_total 7
# TYPE valuespec_sweep_specs_total counter
valuespec_sweep_specs_total 104
# TYPE valuespec_sweep_eta_seconds gauge
valuespec_sweep_eta_seconds 1.5
# TYPE valuespec_sweep_spec_cycles histogram
valuespec_sweep_spec_cycles_bucket{le="0"} 1
valuespec_sweep_spec_cycles_bucket{le="3"} 2
valuespec_sweep_spec_cycles_bucket{le="19"} 3
valuespec_sweep_spec_cycles_bucket{le="1023"} 4
valuespec_sweep_spec_cycles_bucket{le="+Inf"} 4
valuespec_sweep_spec_cycles_sum 1020
valuespec_sweep_spec_cycles_count 4
# TYPE valuespec_http_inflight gauge
valuespec_http_inflight 1
# TYPE valuespec_http_responses_metrics_2xx_total counter
valuespec_http_responses_metrics_2xx_total 3
# TYPE valuespec_http_request_us_metrics histogram
valuespec_http_request_us_metrics_bucket{le="19"} 1
valuespec_http_request_us_metrics_bucket{le="+Inf"} 1
valuespec_http_request_us_metrics_sum 17
valuespec_http_request_us_metrics_count 1
`
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, "valuespec"); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPromEmptyHistogram checks that a registered-but-unobserved histogram
// still exposes a _bucket series (the mandatory le="+Inf"), so scrapes and
// smoke tests see the full metric set from the first instant of a run.
func TestPromEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("sweep.spec_cycles")
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, "valuespec"); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE valuespec_sweep_spec_cycles histogram
valuespec_sweep_spec_cycles_bucket{le="+Inf"} 0
valuespec_sweep_spec_cycles_sum 0
valuespec_sweep_spec_cycles_count 0
`
	if got := buf.String(); got != want {
		t.Errorf("empty histogram mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPromBucketsCumulative checks the structural invariants of the bucket
// series on a spread of samples: strictly increasing le values, monotonically
// non-decreasing cumulative counts, and a +Inf line equal to _count.
func TestPromBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := int64(0); v < 5000; v += 7 {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, ""); err != nil {
		t.Fatal(err)
	}
	lastLe := int64(-1)
	lastCum := uint64(0)
	var infCum uint64
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "lat_bucket{le=") {
			continue
		}
		var cum uint64
		if strings.Contains(line, `le="+Inf"`) {
			if _, err := fmt.Sscanf(line, `lat_bucket{le="+Inf"} %d`, &infCum); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			continue
		}
		var le int64
		if _, err := fmt.Sscanf(line, `lat_bucket{le="%d"} %d`, &le, &cum); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if le <= lastLe {
			t.Errorf("le %d not increasing after %d", le, lastLe)
		}
		if cum < lastCum {
			t.Errorf("cumulative count %d decreased from %d at le=%d", cum, lastCum, le)
		}
		lastLe, lastCum = le, cum
	}
	if infCum != h.Count() {
		t.Errorf("+Inf bucket %d, want count %d", infCum, h.Count())
	}
	if lastCum != h.Count() {
		t.Errorf("last finite bucket %d, want all %d samples <= its le", lastCum, h.Count())
	}
}

// TestPromName covers the charset sanitization.
func TestPromName(t *testing.T) {
	for _, tc := range []struct{ ns, in, want string }{
		{"valuespec", "retired", "valuespec_retired"},
		{"valuespec", "trace_cache.hits", "valuespec_trace_cache_hits"},
		{"", "window.occupancy", "window_occupancy"},
		{"", "9lives", "_lives"},
		{"", "a-b c", "a_b_c"},
	} {
		if got := promName(tc.ns, tc.in); got != tc.want {
			t.Errorf("promName(%q, %q) = %q, want %q", tc.ns, tc.in, got, tc.want)
		}
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	// Values below 4 get exact buckets.
	for v := int64(0); v < 4; v++ {
		if got := BucketIndex(v); got != int(v) {
			t.Errorf("BucketIndex(%d) = %d, want %d", v, got, v)
		}
	}
	if BucketIndex(-5) != 0 {
		t.Errorf("negative values must clamp to bucket 0")
	}
	// Each octave [2^e, 2^(e+1)) splits into 4 sub-buckets: boundaries
	// 4,5,6,7,8,10,12,14,16,20,24,28,32,...
	wantLo := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56, 64}
	for i, lo := range wantLo {
		if got := BucketLowerBound(i); got != lo {
			t.Errorf("BucketLowerBound(%d) = %d, want %d", i, got, lo)
		}
	}
	// BucketIndex and BucketLowerBound must agree: every lower bound maps to
	// its own bucket, and the value just below it to the previous bucket.
	for i := 1; i < numHistBuckets; i++ {
		lo := BucketLowerBound(i)
		if got := BucketIndex(lo); got != i {
			t.Errorf("BucketIndex(%d) = %d, want %d", lo, got, i)
		}
		if got := BucketIndex(lo - 1); got != i-1 {
			t.Errorf("BucketIndex(%d) = %d, want %d", lo-1, got, i-1)
		}
	}
}

// TestQuantileExactSmall checks quantiles on a distribution entirely inside
// the exact (unit-width) buckets.
func TestQuantileExactSmall(t *testing.T) {
	h := NewHistogram()
	// 100 samples: 50x0, 30x1, 15x2, 5x3.
	for i, n := range []int{50, 30, 15, 5} {
		for j := 0; j < n; j++ {
			h.Observe(int64(i))
		}
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 0}, {0.25, 0}, {0.49, 0}, {0.5, 1}, {0.79, 1}, {0.80, 2}, {0.94, 2}, {0.95, 3}, {1, 3},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if h.Mean() != 0.75 {
		t.Errorf("Mean = %g, want 0.75", h.Mean())
	}
	if h.Min() != 0 || h.Max() != 3 {
		t.Errorf("Min/Max = %d/%d, want 0/3", h.Min(), h.Max())
	}
}

// TestQuantileBoundedError checks the 25% relative-error bound on a uniform
// distribution spanning many octaves.
func TestQuantileBoundedError(t *testing.T) {
	h := NewHistogram()
	var exact []int64
	for v := int64(1); v <= 100000; v++ {
		h.Observe(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 0.999} {
		want := float64(exact[int(q*float64(len(exact)))])
		got := h.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.25 {
			t.Errorf("Quantile(%g) = %g, exact %g, relative error %.2f > 0.25", q, got, want, rel)
		}
		if got > want {
			t.Errorf("Quantile(%g) = %g overestimates exact %g (lower-bound estimate must not)", q, got, want)
		}
	}
	if h.Sum() != 100000*100001/2 {
		t.Errorf("Sum = %d", h.Sum())
	}
}

func TestHistogramBucketsIteration(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 5, 5, 9, 1000} {
		h.Observe(v)
	}
	var total uint64
	prev := int64(-1)
	h.Buckets(func(lo, hi int64, count uint64) {
		if lo <= prev {
			t.Errorf("buckets not ascending: lo %d after %d", lo, prev)
		}
		if hi <= lo {
			t.Errorf("bucket [%d,%d) empty range", lo, hi)
		}
		prev = lo
		total += count
	})
	if total != 5 {
		t.Errorf("bucket counts sum to %d, want 5", total)
	}
}

func TestRegistryKindsAndOrder(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	g := r.Gauge("b.gauge")
	h := r.Histogram("c.hist")
	c.Add(3)
	g.Set(1.5)
	h.Observe(7)
	if r.Counter("a.count") != c || r.Gauge("b.gauge") != g || r.Histogram("c.hist") != h {
		t.Fatal("get-or-create must return the same metric")
	}
	wantCols := []string{"a.count", "b.gauge",
		"c.hist.count", "c.hist.mean", "c.hist.p50", "c.hist.p90", "c.hist.p99", "c.hist.max"}
	cols := r.Columns()
	if len(cols) != len(wantCols) {
		t.Fatalf("Columns = %v, want %v", cols, wantCols)
	}
	for i := range cols {
		if cols[i] != wantCols[i] {
			t.Errorf("Columns[%d] = %q, want %q", i, cols[i], wantCols[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("a.count")
}

// TestSamplerDeltasReconcile checks that summed counter deltas equal the
// counter's final value.
func TestSamplerDeltasReconcile(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	s := NewIntervalSampler(r, 10, 0)
	for cycle := int64(1); cycle <= 95; cycle++ {
		c.Add(cycle % 3) // uneven increments
		if s.Due(cycle) {
			s.Sample(cycle)
		}
	}
	s.Flush(95)
	var sum float64
	for _, sm := range s.Samples() {
		sum += sm.Values[0]
	}
	if int64(sum) != c.Value() {
		t.Errorf("summed deltas %v != final counter %d", sum, c.Value())
	}
	if got := s.Len(); got != 10 {
		t.Errorf("Len = %d, want 10 (9 full intervals + flush)", got)
	}
	if s.Samples()[len(s.Samples())-1].Cycle != 95 {
		t.Errorf("flush sample cycle = %d, want 95", s.Samples()[len(s.Samples())-1].Cycle)
	}
}

// TestSamplerRingWraparound checks overwrite-oldest semantics.
func TestSamplerRingWraparound(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ticks")
	s := NewIntervalSampler(r, 1, 4)
	for cycle := int64(1); cycle <= 10; cycle++ {
		c.Add(1)
		s.Sample(cycle)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", s.Dropped())
	}
	got := s.Samples()
	for i, want := range []int64{7, 8, 9, 10} {
		if got[i].Cycle != want {
			t.Errorf("sample %d cycle = %d, want %d (oldest-first)", i, got[i].Cycle, want)
		}
		if got[i].Values[0] != 1 {
			t.Errorf("sample %d delta = %v, want 1", i, got[i].Values[0])
		}
	}
}

func TestTraceWriteJSON(t *testing.T) {
	var tr Trace
	tr.ProcessName(0, "window")
	tr.ThreadName(0, 2, "slot 2")
	tr.Complete(0, 2, "seq 0", 1, 4, map[string]any{"pc": 7})
	tr.Complete(0, 2, "seq 9", 5, 0, nil) // zero dur clamps to 1
	tr.Instant(0, 2, "invalidate", 3, nil)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[3].Dur != 1 {
		t.Errorf("zero-duration slice not clamped: dur=%d", doc.TraceEvents[3].Dur)
	}
	if doc.TraceEvents[4].Phase != "i" || doc.TraceEvents[4].Scope != "t" {
		t.Errorf("instant event malformed: %+v", doc.TraceEvents[4])
	}
}

func TestPhaseTimer(t *testing.T) {
	pt := NewPhaseTimer("a", "b")
	pt.Begin(0)
	pt.Begin(1)
	pt.End()
	bd := pt.Breakdown()
	if len(bd) != 2 || bd[0].Name != "a" || bd[1].Name != "b" {
		t.Fatalf("breakdown = %+v", bd)
	}
	var frac float64
	for _, s := range bd {
		if s.Total < 0 {
			t.Errorf("negative total for %s", s.Name)
		}
		frac += s.Frac
	}
	if frac != 0 && math.Abs(frac-1) > 1e-9 {
		t.Errorf("fractions sum to %g", frac)
	}
}

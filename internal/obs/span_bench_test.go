package obs

import (
	"io"
	"testing"
	"time"
)

// BenchmarkSpanEmitDisabled pins the disabled-tracer fast path: starting,
// annotating, and ending a span against a nil tracer must stay at 0
// allocs/op (benchcheck gates it), so leaving tracing off costs the job
// service nothing but a few branches.
func BenchmarkSpanEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("j000001", "run")
		sp.Attr("spec_hash", "cafe")
		sp.Attr("attempt", "1")
		sp.End()
	}
}

// BenchmarkSpanEmitEnabled measures the live recording path: one mutex-held
// ring write per span, no allocations after the ring itself.
func BenchmarkSpanEmitEnabled(b *testing.B) {
	tr := NewTracer(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("j000001", "run")
		sp.Attr("spec_hash", "cafe")
		sp.Attr("attempt", "1")
		sp.End()
	}
}

// BenchmarkTraceExport measures rendering a full ring (1024 spans with
// attributes) to Chrome trace JSON — the cost of one GET /trace.
func BenchmarkTraceExport(b *testing.B) {
	tr := NewTracer(1024)
	base := time.Unix(0, 0)
	for i := 0; i < 1024; i++ {
		tr.Emit("j000001", "run",
			base.Add(time.Duration(i)*time.Millisecond),
			base.Add(time.Duration(i+1)*time.Millisecond),
			SpanAttr{Key: "spec_hash", Value: "cafe"},
			SpanAttr{Key: "attempt", Value: "1"})
	}
	spans := tr.Spans("")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteChromeTrace(io.Discard, spans); err != nil {
			b.Fatal(err)
		}
	}
}

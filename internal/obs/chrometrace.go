package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one event of the Chrome trace-event format (the JSON
// consumed by chrome://tracing and https://ui.perfetto.dev). Only the
// fields the simulator emits are modeled: complete slices ("X"), instant
// events ("i") and metadata ("M").
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace accumulates trace events and serializes them as a Chrome trace JSON
// object. Timestamps are in trace "microseconds"; the simulator maps one
// cycle to one microsecond so the viewer's time axis reads as cycles.
type Trace struct {
	events []TraceEvent
}

// ProcessName emits metadata naming a process track group.
func (t *Trace) ProcessName(pid int, name string) {
	t.events = append(t.events, TraceEvent{
		Name: "process_name", Phase: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// ThreadName emits metadata naming one track within a process.
func (t *Trace) ThreadName(pid, tid int, name string) {
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Phase: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Complete emits a complete slice: a named span [ts, ts+dur) on one track.
func (t *Trace) Complete(pid, tid int, name string, ts, dur int64, args map[string]any) {
	if dur < 1 {
		dur = 1 // zero-width slices are invisible in the viewer
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "X", TS: ts, Dur: dur, PID: pid, TID: tid, Args: args,
	})
}

// Instant emits a thread-scoped instant event at ts on one track.
func (t *Trace) Instant(pid, tid int, name string, ts int64, args map[string]any) {
	t.events = append(t.events, TraceEvent{
		Name: name, Phase: "i", TS: ts, PID: pid, TID: tid, Scope: "t", Args: args,
	})
}

// Len returns the number of accumulated events.
func (t *Trace) Len() int { return len(t.events) }

// WriteJSON writes the trace in the JSON object format, one event per line.
// The output is deterministic: events appear in emission order and JSON maps
// marshal with sorted keys.
func (t *Trace) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	for i, ev := range t.events {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("obs: marshal trace event: %w", err)
		}
		sep := ",\n"
		if i == len(t.events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
	}
	_, err := io.WriteString(w, "]}\n")
	if err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}

package obs

import (
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text exposition
// format, version 0.0.4, in registration order (so output is deterministic
// and golden-testable). Metric names are sanitized to the Prometheus charset
// (dots and other separators become underscores) and prefixed with
// namespace_ when namespace is non-empty.
//
//   - counters render as "<name>_total" with "# TYPE ... counter" (names
//     already ending in _total are not suffixed again);
//   - gauges render verbatim with "# TYPE ... gauge";
//   - histograms render as cumulative "_bucket{le="..."}" series derived
//     from the log-bucketed counts, plus exact "_sum" and "_count". Samples
//     are integers and each obs bucket spans [lo, hi), so le = hi-1 bounds
//     every bucket exactly — no precision is lost in translation. Only
//     non-empty buckets are emitted (plus the mandatory le="+Inf").
//
// The registry must be private to the caller: pass a plain single-goroutine
// Registry, or a SharedRegistry.Snapshot().
func WritePrometheus(w io.Writer, r *Registry, namespace string) error {
	// One reusable line buffer: the whole exposition allocates only the
	// sanitized names and whatever growth the buffer needs once.
	buf := make([]byte, 0, 256)
	flush := func() error {
		_, err := w.Write(buf)
		buf = buf[:0]
		return err
	}
	for _, name := range r.order {
		pn := promName(namespace, name)
		switch {
		case r.counters[name] != nil:
			if !strings.HasSuffix(pn, "_total") {
				pn += "_total"
			}
			buf = append(buf, "# TYPE "...)
			buf = append(buf, pn...)
			buf = append(buf, " counter\n"...)
			buf = append(buf, pn...)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, r.counters[name].Value(), 10)
			buf = append(buf, '\n')
		case r.gauges[name] != nil:
			buf = append(buf, "# TYPE "...)
			buf = append(buf, pn...)
			buf = append(buf, " gauge\n"...)
			buf = append(buf, pn...)
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, r.gauges[name].Value(), 'g', -1, 64)
			buf = append(buf, '\n')
		default:
			buf = appendPromHistogram(buf, pn, r.hists[name])
		}
		if err := flush(); err != nil {
			return err
		}
	}
	return nil
}

// appendPromHistogram renders one histogram as cumulative buckets.
func appendPromHistogram(buf []byte, pn string, h *Histogram) []byte {
	buf = append(buf, "# TYPE "...)
	buf = append(buf, pn...)
	buf = append(buf, " histogram\n"...)
	var cum uint64
	h.Buckets(func(lo, hi int64, count uint64) {
		cum += count
		if hi == 1<<63-1 { // final bucket: covered by le="+Inf" below
			return
		}
		buf = append(buf, pn...)
		buf = append(buf, `_bucket{le="`...)
		buf = strconv.AppendInt(buf, hi-1, 10)
		buf = append(buf, `"} `...)
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	})
	buf = append(buf, pn...)
	buf = append(buf, `_bucket{le="+Inf"} `...)
	buf = strconv.AppendUint(buf, h.Count(), 10)
	buf = append(buf, '\n')
	buf = append(buf, pn...)
	buf = append(buf, "_sum "...)
	buf = strconv.AppendInt(buf, h.Sum(), 10)
	buf = append(buf, '\n')
	buf = append(buf, pn...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendUint(buf, h.Count(), 10)
	buf = append(buf, '\n')
	return buf
}

// promName sanitizes an obs metric name into the Prometheus name charset
// [a-zA-Z0-9_:], mapping every other byte (the registry's dots, mostly) to
// an underscore, and prefixes the namespace.
func promName(namespace, name string) string {
	var b strings.Builder
	b.Grow(len(namespace) + 1 + len(name))
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

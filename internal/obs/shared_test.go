package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestHistogramMerge checks that merging two histograms is sample-exact:
// identical to observing every sample into one.
func TestHistogramMerge(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for v := int64(0); v < 300; v++ {
		h := a
		if v%3 == 0 {
			h = b
		}
		h.Observe(v * v % 97)
		all.Observe(v * v % 97)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged count/sum/min/max = %d/%d/%d/%d, want %d/%d/%d/%d",
			a.Count(), a.Sum(), a.Min(), a.Max(), all.Count(), all.Sum(), all.Min(), all.Max())
	}
	for i := range a.counts {
		if a.counts[i] != all.counts[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, a.counts[i], all.counts[i])
		}
	}
	// Merging an empty histogram is a no-op, including on min/max.
	before := a.Min()
	a.Merge(NewHistogram())
	if a.Min() != before || a.Count() != all.Count() {
		t.Error("merging an empty histogram changed state")
	}
}

// TestRegistryMergeAndClone checks the merge semantics (counters add, gauges
// overwrite, histograms combine) and that clones are fully independent.
func TestRegistryMergeAndClone(t *testing.T) {
	a := NewRegistry()
	a.Counter("retired").Add(10)
	a.Gauge("rate").Set(1.0)
	a.Histogram("lat").Observe(5)

	b := NewRegistry()
	b.Counter("retired").Add(32)
	b.Counter("cycles").Add(7)
	b.Gauge("rate").Set(2.5)
	b.Histogram("lat").Observe(9)

	a.Merge(b)
	if got := a.Counter("retired").Value(); got != 42 {
		t.Errorf("merged counter = %d, want 42", got)
	}
	if got := a.Counter("cycles").Value(); got != 7 {
		t.Errorf("new-name counter = %d, want 7", got)
	}
	if got := a.Gauge("rate").Value(); got != 2.5 {
		t.Errorf("merged gauge = %g, want last-merge value 2.5", got)
	}
	if got := a.Histogram("lat").Count(); got != 2 {
		t.Errorf("merged histogram count = %d, want 2", got)
	}

	c := a.Clone()
	a.Counter("retired").Add(1)
	a.Gauge("rate").Set(9)
	a.Histogram("lat").Observe(1)
	if c.Counter("retired").Value() != 42 || c.Gauge("rate").Value() != 2.5 || c.Histogram("lat").Count() != 2 {
		t.Error("clone shares state with its source")
	}
	if got, want := fmt.Sprint(c.Names()), fmt.Sprint(a.Names()); got != want {
		t.Errorf("clone order %v, want %v", got, want)
	}
}

// TestRegistryMergeKindConflict checks that merging a name registered as a
// different kind panics, same as direct misuse of the registry.
func TestRegistryMergeKindConflict(t *testing.T) {
	a := NewRegistry()
	a.Counter("x")
	b := NewRegistry()
	b.Gauge("x")
	defer func() {
		if recover() == nil {
			t.Error("merge across kinds did not panic")
		}
	}()
	a.Merge(b)
}

// TestSharedRegistryConcurrent hammers one SharedRegistry from 8 goroutines
// mixing every mutator with snapshots and merges; run under -race this is
// the package's data-race canary, and the final counts are checked exactly.
func TestSharedRegistryConcurrent(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
	)
	s := NewSharedRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			private := NewRegistry()
			private.Counter("merged").Add(1)
			private.Histogram("lat").Observe(int64(g))
			for i := 0; i < iters; i++ {
				s.Add("adds", 1)
				s.SetGauge("gauge", float64(g))
				s.Observe("lat", int64(i%100))
				s.Do(func(r *Registry) {
					r.Counter("batched").Add(1)
					r.Gauge("batched_gauge").Set(float64(i))
				})
				if i%100 == 0 {
					snap := s.Snapshot()
					if snap.Counter("adds").Value() < 0 {
						t.Error("negative counter in snapshot")
					}
					// The snapshot is private: mutating it must not affect s.
					snap.Counter("adds").Add(1 << 40)
				}
			}
			s.Merge(private)
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	if got := snap.Counter("adds").Value(); got != goroutines*iters {
		t.Errorf("adds = %d, want %d", got, goroutines*iters)
	}
	if got := snap.Counter("batched").Value(); got != goroutines*iters {
		t.Errorf("batched = %d, want %d", got, goroutines*iters)
	}
	if got := snap.Counter("merged").Value(); got != goroutines {
		t.Errorf("merged = %d, want %d", got, goroutines)
	}
	if got := snap.Histogram("lat").Count(); got != uint64(goroutines*iters+goroutines) {
		t.Errorf("lat count = %d, want %d", got, goroutines*iters+goroutines)
	}
}

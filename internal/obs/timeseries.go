package obs

import "sort"

// Point is one sample of a TimeSeries: an X coordinate (cycle number or
// elapsed milliseconds, whatever the producer samples on) and a value.
type Point struct {
	X int64   `json:"x"`
	Y float64 `json:"y"`
}

// TimeSeries is a fixed-capacity series that always spans the whole run.
// Storage is allocated once at construction; when the buffer fills, the
// series decimates itself in place — every other retained point is dropped
// and the acceptance stride doubles — so a long run keeps full temporal
// coverage at progressively coarser resolution instead of losing its head
// (contrast IntervalSampler, whose ring overwrites the oldest samples).
// The first and the most recently appended point are always retained, so
// both endpoints of the run survive any amount of decimation.
//
// Like Registry, a TimeSeries is single-goroutine; aggregation across
// goroutines goes through Clone/Merge of snapshots.
type TimeSeries struct {
	capacity int
	stride   int64 // appended points kept: indices ≡ 0 (mod stride)
	appended int64 // total points ever appended
	pts      []Point
	last     Point // most recent append, retained even when off-stride
}

// minSeriesCap is the floor on capacity: decimation needs headroom to halve.
const minSeriesCap = 4

// NewTimeSeries returns an empty series holding at most capacity retained
// points (clamped to a small minimum so decimation is meaningful).
func NewTimeSeries(capacity int) *TimeSeries {
	if capacity < minSeriesCap {
		capacity = minSeriesCap
	}
	return &TimeSeries{
		capacity: capacity,
		stride:   1,
		pts:      make([]Point, 0, capacity),
	}
}

// bodyCap returns the decimated body's capacity: one slot of the configured
// capacity is reserved for the always-retained most recent point, so Len
// never exceeds Cap.
func (s *TimeSeries) bodyCap() int { return s.capacity - 1 }

// Append records one sample. X coordinates must be non-decreasing; the
// series never allocates after construction.
func (s *TimeSeries) Append(x int64, y float64) {
	p := Point{X: x, Y: y}
	i := s.appended
	s.appended++
	s.last = p
	if i%s.stride != 0 {
		return
	}
	if len(s.pts) == s.bodyCap() {
		s.decimate()
		if i%s.stride != 0 {
			return
		}
	}
	s.pts = append(s.pts, p)
}

// decimate halves the retained resolution in place: every other point is
// dropped (keeping the even-indexed ones, so the first point survives) and
// the acceptance stride doubles.
func (s *TimeSeries) decimate() {
	n := 0
	for i := 0; i < len(s.pts); i += 2 {
		s.pts[n] = s.pts[i]
		n++
	}
	s.pts = s.pts[:n]
	s.stride *= 2
}

// Len returns the number of points Points would return.
func (s *TimeSeries) Len() int {
	if s.appended == 0 {
		return 0
	}
	n := len(s.pts)
	if n == 0 || s.pts[n-1].X < s.last.X {
		n++
	}
	return n
}

// Cap returns the configured capacity; Len never exceeds it.
func (s *TimeSeries) Cap() int { return s.capacity }

// Stride returns how many appended points one retained point currently
// stands for (1 until the first decimation, then doubling).
func (s *TimeSeries) Stride() int64 { return s.stride }

// Appended returns the total number of points ever appended.
func (s *TimeSeries) Appended() int64 { return s.appended }

// First returns the earliest retained point (the first ever appended).
func (s *TimeSeries) First() (Point, bool) {
	if s.appended == 0 {
		return Point{}, false
	}
	return s.pts[0], true
}

// Last returns the most recently appended point.
func (s *TimeSeries) Last() (Point, bool) {
	if s.appended == 0 {
		return Point{}, false
	}
	return s.last, true
}

// Points appends the retained samples, in ascending X order, to dst and
// returns it. The most recent append is included even if it fell between
// strides, so the series always ends at the run's true endpoint.
func (s *TimeSeries) Points(dst []Point) []Point {
	if s.appended == 0 {
		return dst
	}
	dst = append(dst, s.pts...)
	if n := len(s.pts); n == 0 || s.pts[n-1].X < s.last.X {
		dst = append(dst, s.last)
	}
	return dst
}

// Merge folds every retained point of o into s, as if both series had
// observed one interleaved run: the union is taken in ascending X order
// (ties keep both, s's points first), then bounded back to s's capacity by
// dropping every other point while preserving both endpoints. As long as
// the union fits the capacity no points are dropped, which is what makes
// Merge associative below capacity.
func (s *TimeSeries) Merge(o *TimeSeries) {
	if o == nil || o.appended == 0 {
		return
	}
	merged := s.Points(nil)
	merged = o.Points(merged)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].X < merged[j].X })

	last := merged[len(merged)-1]
	for len(merged) > s.bodyCap() {
		n := 0
		for i := 0; i < len(merged); i += 2 {
			merged[n] = merged[i]
			n++
		}
		merged = merged[:n]
		s.stride *= 2
	}
	s.appended += o.appended
	s.pts = s.pts[:0]
	s.pts = append(s.pts, merged...)
	s.last = last
}

// Clone returns an independent deep copy of s.
func (s *TimeSeries) Clone() *TimeSeries {
	c := &TimeSeries{
		capacity: s.capacity,
		stride:   s.stride,
		appended: s.appended,
		last:     s.last,
		pts:      make([]Point, len(s.pts), s.capacity),
	}
	copy(c.pts, s.pts)
	return c
}

// SpecOutcomes is the four-quadrant speculation-outcome counter block of
// Sazeides' model: every confident prediction either drove speculation
// (used) or did not (unused), and was either correct or wrong. The four
// cells partition all predictions, so their sum must reconcile exactly
// with Predictions.
//
//   - CorrectUsed:   predicted correct, speculation used it — pure win.
//   - WrongUsed:     mispredicted and used — paid invalidation/reissue cost.
//   - CorrectUnused: correct but low-confidence — lost opportunity.
//   - WrongUnused:   wrong and not used — the confidence filter saved a squash.
type SpecOutcomes struct {
	Predictions   int64 `json:"predictions"`
	CorrectUsed   int64 `json:"correct_used"`
	WrongUsed     int64 `json:"wrong_used"`
	CorrectUnused int64 `json:"correct_unused"`
	WrongUnused   int64 `json:"wrong_unused"`
}

// Merge folds o's counts into s.
func (s *SpecOutcomes) Merge(o SpecOutcomes) {
	s.Predictions += o.Predictions
	s.CorrectUsed += o.CorrectUsed
	s.WrongUsed += o.WrongUsed
	s.CorrectUnused += o.CorrectUnused
	s.WrongUnused += o.WrongUnused
}

// Total returns the sum of the four quadrants.
func (s SpecOutcomes) Total() int64 {
	return s.CorrectUsed + s.WrongUsed + s.CorrectUnused + s.WrongUnused
}

// Reconciled reports whether the quadrants partition Predictions exactly.
func (s SpecOutcomes) Reconciled() bool { return s.Total() == s.Predictions }

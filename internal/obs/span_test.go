package obs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files instead of comparing")

// scriptedTracer returns a tracer whose clock advances step nanoseconds per
// reading, starting at base, so recorded timestamps are deterministic.
func scriptedTracer(capacity int, base, step int64) *Tracer {
	t := NewTracer(capacity)
	now := base - step
	t.now = func() int64 {
		now += step
		return now
	}
	return t
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := scriptedTracer(16, 1000, 100)
	sp := tr.Start("j000001", "run")
	sp.Attr("spec_hash", "abc")
	sp.Attr("attempt", "1")
	sp.End()
	tr.Emit("j000001", "queue_wait",
		time.Unix(0, 100), time.Unix(0, 400),
		SpanAttr{Key: "spec_hash", Value: "abc"})

	spans := tr.Spans("")
	if len(spans) != 2 {
		t.Fatalf("Spans() = %d spans, want 2", len(spans))
	}
	run := spans[0]
	if run.Name != "run" || run.Track != "j000001" {
		t.Errorf("span 0 = %s on %s, want run on j000001", run.Name, run.Track)
	}
	if run.Start != 1000 || run.End != 1100 {
		t.Errorf("run span [%d, %d], want [1000, 1100]", run.Start, run.End)
	}
	if run.Duration() != 100*time.Nanosecond {
		t.Errorf("run duration = %v, want 100ns", run.Duration())
	}
	if v, ok := run.Attr("spec_hash"); !ok || v != "abc" {
		t.Errorf("run spec_hash = %q/%v, want abc", v, ok)
	}
	if got := len(run.Attrs()); got != 2 {
		t.Errorf("run has %d attrs, want 2", got)
	}
	qw := spans[1]
	if qw.Name != "queue_wait" || qw.Start != 100 || qw.End != 400 {
		t.Errorf("emit span = %s [%d, %d], want queue_wait [100, 400]", qw.Name, qw.Start, qw.End)
	}
	if run.ID != 1 || qw.ID != 2 {
		t.Errorf("span ids = %d, %d, want 1, 2", run.ID, qw.ID)
	}
}

func TestTracerTrackFilter(t *testing.T) {
	tr := scriptedTracer(16, 0, 10)
	for i := 0; i < 3; i++ {
		sp := tr.Start(fmt.Sprintf("j%06d", i%2), "run")
		sp.End()
	}
	if got := len(tr.Spans("j000000")); got != 2 {
		t.Errorf("Spans(j000000) = %d, want 2", got)
	}
	if got := len(tr.Spans("j000001")); got != 1 {
		t.Errorf("Spans(j000001) = %d, want 1", got)
	}
	if got := len(tr.Spans("j000009")); got != 0 {
		t.Errorf("Spans(j000009) = %d, want 0", got)
	}
}

// TestTracerRingWrap pins the bounded-memory contract: the ring keeps the
// newest capacity spans, counts the overwritten ones, and Spans still
// returns them oldest first.
func TestTracerRingWrap(t *testing.T) {
	tr := scriptedTracer(4, 0, 1)
	for i := 0; i < 6; i++ {
		sp := tr.Start("t", fmt.Sprintf("s%d", i))
		sp.End()
	}
	if got := tr.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	spans := tr.Spans("")
	if len(spans) != 4 {
		t.Fatalf("Spans = %d, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", i+2); sp.Name != want {
			t.Errorf("span %d = %s, want %s (oldest-first after wrap)", i, sp.Name, want)
		}
	}
}

func TestSpanAttrTruncation(t *testing.T) {
	tr := scriptedTracer(4, 0, 1)
	sp := tr.Start("t", "many")
	for i := 0; i < spanAttrCap+3; i++ {
		sp.Attr(fmt.Sprintf("k%d", i), "v")
	}
	sp.End()

	attrs := make([]SpanAttr, spanAttrCap+2)
	for i := range attrs {
		attrs[i] = SpanAttr{Key: fmt.Sprintf("e%d", i), Value: "v"}
	}
	tr.Emit("t", "emitted", time.Unix(0, 1), time.Unix(0, 2), attrs...)

	spans := tr.Spans("")
	if got := len(spans[0].Attrs()); got != spanAttrCap {
		t.Errorf("started span kept %d attrs, want %d", got, spanAttrCap)
	}
	if got := spans[0].TruncatedAttrs(); got != 3 {
		t.Errorf("started span truncated %d, want 3", got)
	}
	if got := len(spans[1].Attrs()); got != spanAttrCap {
		t.Errorf("emitted span kept %d attrs, want %d", got, spanAttrCap)
	}
	if got := spans[1].TruncatedAttrs(); got != 2 {
		t.Errorf("emitted span truncated %d, want 2", got)
	}
}

// TestNilTracer pins the disabled fast path: every method is safe and inert
// on a nil tracer, matching the nil-observer contract of the pipeline.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	sp := tr.Start("t", "x")
	sp.Attr("k", "v")
	sp.End()
	tr.Emit("t", "y", time.Unix(0, 1), time.Unix(0, 2))
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans("") != nil {
		t.Error("nil tracer recorded something")
	}
}

func TestSpanRefDoubleEnd(t *testing.T) {
	tr := scriptedTracer(4, 0, 1)
	sp := tr.Start("t", "once")
	sp.End()
	sp.End()
	if got := tr.Len(); got != 1 {
		t.Errorf("double End recorded %d spans, want 1", got)
	}
}

// TestChromeTraceGolden pins the span export byte-for-byte: a two-track
// timeline (one job plus an http route) with attributes, scripted
// timestamps, and out-of-order starts. Regenerate with -update-golden.
func TestChromeTraceGolden(t *testing.T) {
	base := time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)
	at := func(ms int64) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	tr := NewTracer(16)
	tr.Emit("j000001", "submit", at(0), at(2),
		SpanAttr{Key: "spec_hash", Value: "cafe"},
		SpanAttr{Key: "specs", Value: "4"})
	tr.Emit("j000001", "queue_wait", at(2), at(10),
		SpanAttr{Key: "spec_hash", Value: "cafe"})
	tr.Emit("j000001", "run", at(10), at(150),
		SpanAttr{Key: "attempt", Value: "1"},
		SpanAttr{Key: "cycles", Value: "123456"})
	tr.Emit("j000001", "store", at(150), at(151))
	tr.Emit("http", "metrics", at(40), at(41))
	tr.Emit("j000001", "job", at(0), at(151),
		SpanAttr{Key: "state", Value: "done"},
		SpanAttr{Key: "attempts", Value: "1"})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans("")); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "span_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from %s (-update-golden to accept):\n--- got ---\n%s--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	want := "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n"
	if buf.String() != want {
		t.Errorf("empty trace = %q, want %q", buf.String(), want)
	}
}

// TestTracerConcurrent exercises the ring under the race detector.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				sp := tr.Start(fmt.Sprintf("g%d", g), "work")
				sp.Attr("i", "x")
				sp.End()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := tr.Len(); got != 64 {
		t.Errorf("Len = %d, want full ring 64", got)
	}
	if got := tr.Dropped(); got != 4*200-64 {
		t.Errorf("Dropped = %d, want %d", got, 4*200-64)
	}
}

package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger from the -log-level/-log-format flag
// values shared by the daemons: level is one of debug/info/warn/error and
// format is text or json. Unknown values are an error so a typo in a
// service flag fails fast instead of silently logging at the wrong level.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// nopLevel sits above every real level so the nop logger's Enabled reports
// false and record construction is skipped entirely.
const nopLevel = slog.LevelError + 4

// NopLogger returns a logger that discards everything without formatting
// it; library code can log unconditionally against it. Use it wherever a
// nil *slog.Logger would otherwise need guarding.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: nopLevel}))
}

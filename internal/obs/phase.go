package obs

import (
	"fmt"
	"strings"
	"time"
)

// PhaseTimer attributes wall time to named phases of a loop. Begin(i) closes
// the phase in progress and starts phase i; End closes the phase in progress
// without starting another. The overhead is one time.Now per transition, so
// the timer is meant to be installed only when profiling.
type PhaseTimer struct {
	names  []string
	totals []time.Duration
	cur    int
	start  time.Time
}

// NewPhaseTimer creates a timer over the given phase names.
func NewPhaseTimer(names ...string) *PhaseTimer {
	return &PhaseTimer{names: names, totals: make([]time.Duration, len(names)), cur: -1}
}

// Begin starts phase i, closing any phase in progress.
func (t *PhaseTimer) Begin(i int) {
	now := time.Now()
	if t.cur >= 0 {
		t.totals[t.cur] += now.Sub(t.start)
	}
	t.cur = i
	t.start = now
}

// End closes the phase in progress.
func (t *PhaseTimer) End() {
	if t.cur >= 0 {
		t.totals[t.cur] += time.Since(t.start)
		t.cur = -1
	}
}

// PhaseStat is the accumulated wall time of one phase.
type PhaseStat struct {
	Name  string
	Total time.Duration
	Frac  float64 // share of the summed phase time
}

// Breakdown returns the per-phase totals in declaration order.
func (t *PhaseTimer) Breakdown() []PhaseStat {
	var sum time.Duration
	for _, d := range t.totals {
		sum += d
	}
	out := make([]PhaseStat, len(t.names))
	for i, name := range t.names {
		frac := 0.0
		if sum > 0 {
			frac = float64(t.totals[i]) / float64(sum)
		}
		out[i] = PhaseStat{Name: name, Total: t.totals[i], Frac: frac}
	}
	return out
}

// String renders the breakdown as an aligned table with percentage bars.
func (t *PhaseTimer) String() string {
	var b strings.Builder
	for _, s := range t.Breakdown() {
		bar := strings.Repeat("#", int(s.Frac*40+0.5))
		fmt.Fprintf(&b, "%-10s %12v %5.1f%% %s\n", s.Name, s.Total.Round(time.Microsecond), 100*s.Frac, bar)
	}
	return b.String()
}

package valuespec_test

import (
	"strings"
	"testing"

	"valuespec"
)

func TestModelsFacade(t *testing.T) {
	models := valuespec.Models()
	if len(models) != 3 {
		t.Fatalf("Models() = %d entries", len(models))
	}
	if valuespec.Super().Lat.InvalidateReissue != 0 || valuespec.Great().Lat.InvalidateReissue != 1 {
		t.Error("preset latencies wrong through facade")
	}
	if valuespec.Good().Lat.ExecEqVerify != 1 {
		t.Error("Good verify latency wrong")
	}
	if _, err := valuespec.ModelByName("great"); err != nil {
		t.Error(err)
	}
	tbl := valuespec.ModelTable(valuespec.Models()...)
	if !strings.Contains(tbl, "Invalidation-Reissue") {
		t.Error("ModelTable missing rows")
	}
}

func TestWorkloadsFacade(t *testing.T) {
	if len(valuespec.Workloads()) != 8 {
		t.Error("suite should have 8 workloads")
	}
	if _, err := valuespec.WorkloadByName("xlisp"); err != nil {
		t.Error(err)
	}
	if _, err := valuespec.WorkloadByName("bogus"); err == nil {
		t.Error("unknown workload resolved")
	}
}

func TestSimulateFacade(t *testing.T) {
	w, err := valuespec.WorkloadByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	model := valuespec.Great()
	res, err := valuespec.Simulate(valuespec.Spec{
		Workload: w,
		Scale:    3,
		Config:   valuespec.Config4x24(),
		Model:    &model,
		Setting:  valuespec.Setting{Update: valuespec.UpdateImmediate},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 || res.Stats.Predictions == 0 {
		t.Errorf("IPC %.2f, predictions %d", res.IPC(), res.Stats.Predictions)
	}
}

func TestAssembleAndPipelineFacade(t *testing.T) {
	prog, err := valuespec.Assemble(`
		ldi r1, 21
		add r2, r1, r1
		st r2, 0(r0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := valuespec.NewMachine(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := valuespec.NewPipeline(valuespec.Config4x24(), nil, m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired != 4 {
		t.Errorf("retired %d, want 4", st.Retired)
	}
	if m.Mem(0) != 42 {
		t.Errorf("mem[0] = %d, want 42", m.Mem(0))
	}
}

func TestBuilderFacade(t *testing.T) {
	b := valuespec.NewProgramBuilder("demo")
	b.Ldi(1, 7)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Code) != 2 {
		t.Errorf("program has %d instructions", len(prog.Code))
	}
}

func TestPredictorFacade(t *testing.T) {
	for _, p := range []valuespec.Predictor{
		valuespec.NewFCM(valuespec.DefaultFCMConfig()),
		valuespec.NewLastValuePredictor(8),
		valuespec.NewStridePredictor(8),
	} {
		_, ck := p.Lookup(1)
		p.TrainImmediate(1, ck, 5)
		pred, _ := p.Lookup(1)
		_ = pred
	}
	if !valuespec.OracleConfidence().Confident(1, true) {
		t.Error("oracle facade broken")
	}
	if valuespec.NeverConfidence().Confident(1, true) {
		t.Error("never facade broken")
	}
	if !valuespec.AlwaysConfidence().Confident(1, false) {
		t.Error("always facade broken")
	}
	c := valuespec.NewResettingConfidence(8, 3)
	for i := 0; i < 7; i++ {
		c.Update(2, true)
	}
	if !c.Confident(2, false) {
		t.Error("resetting facade broken")
	}
}

func TestExperimentFacade(t *testing.T) {
	rows, err := valuespec.Table1(1)
	if err != nil || len(rows) != 8 {
		t.Fatalf("Table1: %v (%d rows)", err, len(rows))
	}
	if len(valuespec.PaperSettings()) != 4 {
		t.Error("PaperSettings should have 4 entries")
	}
	if len(valuespec.PaperConfigs()) != 3 {
		t.Error("PaperConfigs should have 3 entries")
	}
	w, _ := valuespec.WorkloadByName("compress")
	cells, err := valuespec.Fig3(
		[]valuespec.Config{valuespec.Config4x24()},
		[]valuespec.Model{valuespec.Great()},
		[]valuespec.Setting{{Update: valuespec.UpdateImmediate}},
		[]valuespec.Workload{w}, 2)
	if err != nil || len(cells) != 1 {
		t.Fatalf("Fig3: %v (%d cells)", err, len(cells))
	}
	f4, err := valuespec.Fig4([]valuespec.Config{valuespec.Config4x24()},
		[]valuespec.Workload{w}, 2)
	if err != nil || len(f4) != 2 {
		t.Fatalf("Fig4: %v (%d cells)", err, len(f4))
	}
}

module valuespec

go 1.22

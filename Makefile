# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test bench bench-wide benchcheck vet fmt check race-harness serve-smoke jobs-smoke load-smoke fleet-smoke reproduce experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full benchmark pass used for bench_output.txt.
bench:
	$(GO) test -bench=. -benchmem ./...

# The wide-window selection and batched-sweep benchmarks: bitset vs tombstone
# queue vs full scan on a 16-wide/512-entry window, and the scalar-vs-lockstep
# end-to-end sweep comparison (docs/PERFORMANCE.md quotes these numbers).
bench-wide:
	$(GO) test -run '^$$' -bench '^(BenchmarkReadyQueueWide|BenchmarkBitsetSelect)$$' -benchmem ./internal/cpu
	$(GO) test -run '^$$' -bench '^BenchmarkLockstepSweep$$' -benchmem ./internal/harness

# The benchmark regression gate: pinned benchmarks vs BENCH_BASELINE.json,
# failing on >15% slowdown. Refresh the baseline with
# `go run ./cmd/benchcheck -update` after intentional performance changes.
benchcheck:
	$(GO) run ./cmd/benchcheck

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# The pre-merge gate: formatting, vet, and the race-enabled test suite
# (which covers the harness worker pool; see race-harness for the quick
# targeted run).
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) test -race ./...

# Race-enabled run of just the concurrency-bearing packages (the harness
# worker pool plus the observability stack it publishes through), for quick
# iteration; `make check` runs the whole suite under -race.
race-harness:
	$(GO) test -race ./internal/obs ./internal/cpu ./internal/obsweb ./internal/harness ./internal/jobs ./internal/fleet ./internal/load

# End-to-end smoke test of the live observability server: a quick sweep
# with -serve, probed over HTTP while it runs.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke test of the job service: vserved durability across a
# kill/restart, result-store dedup, and vsweep -submit equivalence.
jobs-smoke:
	sh scripts/jobs_smoke.sh

# End-to-end soak of the load/chaos harness: an SLO-gated 10s hotkey soak at
# 500 submissions/sec, a kill-restart chaos pass proving exactly-once
# execution, and negative legs (impossible SLO, fabricated manifest entry)
# proving the gates can fail.
load-smoke:
	sh scripts/load_smoke.sh

# End-to-end smoke test of the distributed fleet runner: a sharded Fig. 3
# sweep drained by remote lease-protocol workers, byte-identical to the
# local run, surviving a mid-sweep worker SIGKILL with a lease requeue.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# Regenerate every table, figure and ablation (several minutes).
experiments:
	$(GO) run ./cmd/vsweep -all -out repro/results -svg repro/figs | tee experiments_output.txt

reproduce:
	./reproduce.sh

clean:
	rm -rf repro

#!/bin/sh
# Smoke-test the distributed fleet runner end-to-end:
#
#   1. baseline: a local (in-process) quick Fig. 3 sweep;
#   2. fleet of 1: the same sweep submitted with -shard 3 to a pure
#      coordinator (-workers 0) drained by one "vserved -worker" (timed, T1);
#   3. fleet of 3: three workers drain the sharded sweep, and one worker is
#      SIGKILLed while it holds a lease — the lease lapses, the coordinator
#      requeues, the survivors finish (timed, T3);
#   4. gates: all three legs' fig3.csv byte-identical (deterministic
#      simulation, exactly-once results); the kill leg's lease-expiration
#      counter is >= 1 (the requeue really happened); and on hosts with >= 4
#      CPUs, T1/T3 >= 2 (near-linear fleet speedup; report-only on smaller
#      hosts, where the workers would just time-slice one core).
#
# Nonzero exit on any failure. Usage: scripts/fleet_smoke.sh [workdir]
set -eu

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
dir=$(cd "$dir" && pwd)
scale=${FLEET_SMOKE_SCALE:-5}
served="$dir/vserved"
sweep="$dir/vsweep"
pid=
wpids=

fail() {
	echo "fleet_smoke: FAIL: $*" >&2
	for f in "$dir"/daemon*.log "$dir"/worker*.log "$dir"/sweep*.log; do
		[ -f "$f" ] && { echo "fleet_smoke: ---- $f ----" >&2; tail -30 "$f" >&2; }
	done
	exit 1
}

cleanup() {
	for p in $wpids $pid; do kill -9 "$p" 2>/dev/null || true; done
	wpids=
	pid=
}
trap cleanup EXIT INT TERM

# start_daemon <data-dir> <log>: pure coordinator (-workers 0) on an
# ephemeral port with a short lease TTL; sets $addr from its serving line.
start_daemon() {
	"$served" -addr 127.0.0.1:0 -data "$1" -workers 0 -lease-ttl 2s >"$2" 2>&1 &
	pid=$!
	addr=
	deadline=$(($(date +%s) + 30))
	while [ -z "$addr" ]; do
		addr=$(sed -n 's|^serving jobs on http://\([^ ]*\).*|\1|p' "$2")
		[ -n "$addr" ] && break
		kill -0 "$pid" 2>/dev/null || fail "vserved exited before serving ($2)"
		[ "$(date +%s)" -lt "$deadline" ] || fail "no 'serving jobs' line within 30s ($2)"
		sleep 0.1
	done
}

# start_worker <id> <log>: one stateless fleet worker; appends its pid to
# $wpids and echoes it.
start_worker() {
	"$served" -worker -coordinator "http://$addr" -worker-id "$1" -capacity 1 >"$2" 2>&1 &
	wp=$!
	wpids="$wpids $wp"
	deadline=$(($(date +%s) + 30))
	while ! grep -q "^worker $1 serving coordinator" "$2" 2>/dev/null; do
		kill -0 "$wp" 2>/dev/null || fail "worker $1 exited before serving ($2)"
		[ "$(date +%s)" -lt "$deadline" ] || fail "worker $1 printed no identity line within 30s"
		sleep 0.1
	done
	echo "$wp"
}

stop_all() {
	cleanup
	trap cleanup EXIT INT TERM
}

# worker_holds_lease <id>: true when the /fleet snapshot shows that worker
# holding at least one lease (its row carries a "leased" array).
worker_holds_lease() {
	j=$(curl -fsS "http://$addr/fleet" 2>/dev/null | tr -d ' \n\t') || return 1
	rest=${j#*\"id\":\"$1\"}
	[ "$rest" != "$j" ] || return 1
	row=${rest%%\"id\":*}
	case $row in *\"leased\":\[\"j*) return 0 ;; esac
	return 1
}

# metric <name>: one counter's value from the Prometheus exposition.
metric() {
	curl -fsS "http://$addr/metrics" | awk -v m="$1" '$1 == m { print $2 }'
}

go build -o "$served" ./cmd/vserved
go build -o "$sweep" ./cmd/vsweep

# --- 1. baseline: local in-process sweep -----------------------------------
echo "fleet_smoke: local baseline sweep (fig3 -quick -scale $scale)"
"$sweep" -fig3 -quick -scale "$scale" -out "$dir/local" >"$dir/sweep-local.log" 2>&1 ||
	fail "local sweep failed"
[ -s "$dir/local/fig3.csv" ] || fail "local sweep wrote no fig3.csv"

# --- 2. fleet of 1: sharded sweep drained by a single worker (T1) ----------
echo "fleet_smoke: fleet of 1 (coordinator -workers 0, -shard 3)"
start_daemon "$dir/data1" "$dir/daemon1.log"
start_worker fw1 "$dir/worker1.log" >/dev/null
t0=$(date +%s)
"$sweep" -fig3 -quick -scale "$scale" -submit "http://$addr" -shard 3 \
	-out "$dir/fleet1" >"$dir/sweep-fleet1.log" 2>&1 ||
	fail "fleet-of-1 sweep failed"
t1=$(($(date +%s) - t0))
cmp -s "$dir/local/fig3.csv" "$dir/fleet1/fig3.csv" ||
	fail "fleet-of-1 fig3.csv differs from the local run"
stop_all
echo "fleet_smoke: fleet of 1 matched the local run byte-for-byte (T1=${t1}s)"

# --- 3. fleet of 3, one worker SIGKILLed while holding a lease (T3) --------
echo "fleet_smoke: fleet of 3 with a mid-sweep worker SIGKILL"
start_daemon "$dir/data3" "$dir/daemon3.log"
w1=$(start_worker fw1 "$dir/worker3a.log")
start_worker fw2 "$dir/worker3b.log" >/dev/null
start_worker fw3 "$dir/worker3c.log" >/dev/null
t0=$(date +%s)
"$sweep" -fig3 -quick -scale "$scale" -submit "http://$addr" -shard 3 \
	-out "$dir/fleet3" >"$dir/sweep-fleet3.log" 2>&1 &
sweeppid=$!
# Wait until fw1 actually holds a lease, then SIGKILL it: the lease must
# lapse (2s TTL), the coordinator must requeue, and a survivor must rerun
# the shard to the same bytes.
deadline=$(($(date +%s) + 60))
while ! worker_holds_lease fw1; do
	kill -0 "$sweeppid" 2>/dev/null || fail "sweep finished before fw1 ever held a lease"
	[ "$(date +%s)" -lt "$deadline" ] || fail "fw1 never held a lease within 60s"
	sleep 0.1
done
kill -9 "$w1" 2>/dev/null || fail "could not SIGKILL worker fw1"
echo "fleet_smoke: SIGKILLed worker fw1 (pid $w1) while it held a lease"
wait "$sweeppid" || fail "fleet-of-3 sweep failed after the worker kill"
t3=$(($(date +%s) - t0))
cmp -s "$dir/local/fig3.csv" "$dir/fleet3/fig3.csv" ||
	fail "fleet-of-3 fig3.csv differs from the local run after the worker kill"

expired=$(metric valuespec_fleet_lease_expirations_total)
[ -n "$expired" ] || fail "no fleet.lease_expirations counter in /metrics"
[ "$expired" -ge 1 ] 2>/dev/null || fail "lease_expirations = $expired, want >= 1 (no requeue happened)"
echo "fleet_smoke: coordinator requeued $expired lapsed lease(s); results stayed byte-identical (T3=${t3}s)"
stop_all

# --- 4. speedup gate (adaptive: enforced only with >= 4 CPUs) --------------
ncpu=$(nproc 2>/dev/null || echo 1)
speedup=$(awk -v a="$t1" -v b="$t3" 'BEGIN { if (b < 1) b = 1; printf "%.2f", a / b }')
if [ "$ncpu" -ge 4 ]; then
	awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' ||
		fail "fleet of 3 only ${speedup}x faster than fleet of 1 (want >= 2x on $ncpu CPUs)"
	echo "fleet_smoke: fleet of 3 is ${speedup}x faster than fleet of 1 ($ncpu CPUs)"
else
	echo "fleet_smoke: speedup T1/T3 = ${speedup}x (report-only: $ncpu CPU(s), workers time-slice one core)"
fi

echo "fleet_smoke: OK (byte-identical across legs + requeue after worker SIGKILL)"

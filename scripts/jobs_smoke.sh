#!/bin/sh
# Smoke-test the simulation job service end-to-end: stage a job on a vserved
# daemon with no workers, kill the daemon, restart it with workers and watch
# the job recover and complete (durability), re-submit the same spec and
# require a dedup hit answered from the result store, then run a real
# vsweep -submit sweep and diff its CSV against a locally simulated run
# (byte-identical results). Nonzero exit on any failure.
#
# Usage: scripts/jobs_smoke.sh [workdir]
set -eu

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
log="$dir/vserved.log"
data="$dir/data"
served="$dir/vserved"
sweep="$dir/vsweep"
pid=

fail() {
	echo "jobs_smoke: FAIL: $*" >&2
	echo "jobs_smoke: ---- daemon log ----" >&2
	cat "$log" >&2 || true
	exit 1
}

# start_daemon <workers>: launch vserved on an ephemeral port against $data
# and set $addr from its serving line.
start_daemon() {
	"$served" -addr 127.0.0.1:0 -data "$data" -workers "$1" >"$log" 2>&1 &
	pid=$!
	addr=
	i=0
	while [ $i -lt 100 ]; do
		addr=$(sed -n 's|^serving jobs on http://\([^ ]*\).*|\1|p' "$log")
		[ -n "$addr" ] && break
		kill -0 "$pid" 2>/dev/null || fail "vserved exited before serving"
		sleep 0.1
		i=$((i + 1))
	done
	[ -n "$addr" ] || fail "no 'serving jobs' line within 10s"
}

stop_daemon() {
	kill "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
	pid=
}

go build -o "$served" ./cmd/vserved
go build -o "$sweep" ./cmd/vsweep
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true' EXIT INT TERM

# --- durability: stage a job with zero workers, restart with workers ------
start_daemon 0
echo "jobs_smoke: daemon (stage-only) at http://$addr"

req='{"name":"smoke","specs":[{"workload":"compress","scale":2}]}'
code=$(curl -s -o "$dir/submit.json" -w '%{http_code}' \
	-X POST -H 'Content-Type: application/json' -d "$req" "http://$addr/jobs") ||
	fail "POST /jobs unreachable"
[ "$code" = "202" ] || fail "POST /jobs = HTTP $code, want 202 (body: $(cat "$dir/submit.json"))"
id=$(sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' "$dir/submit.json" | head -1)
[ -n "$id" ] || fail "no job id in $(cat "$dir/submit.json")"
grep -q '"state": "queued"' "$dir/submit.json" ||
	fail "staged job not queued: $(cat "$dir/submit.json")"

stop_daemon
echo "jobs_smoke: daemon killed with $id pending; restarting with workers"

start_daemon 2
i=0
state=
while [ $i -lt 240 ]; do
	curl -fsS "http://$addr/jobs/$id" >"$dir/job.json" || fail "GET /jobs/$id unreachable"
	state=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' "$dir/job.json" | head -1)
	case $state in
	done) break ;;
	failed | canceled) fail "$id finished $state: $(cat "$dir/job.json")" ;;
	esac
	sleep 0.5
	i=$((i + 1))
done
[ "$state" = "done" ] || fail "$id not done after restart (state '$state')"
echo "jobs_smoke: $id recovered and completed after restart"

curl -fsS "http://$addr/jobs/$id/result" | grep -q '"stats"' ||
	fail "result JSON missing stats"
curl -fsS "http://$addr/jobs/$id/result?format=csv" | head -1 |
	grep -q '^workload,scale,config' || fail "result CSV missing header"

# --- dedup: the same spec again is answered from the result store ---------
code=$(curl -s -o "$dir/dup.json" -w '%{http_code}' \
	-X POST -H 'Content-Type: application/json' -d "$req" "http://$addr/jobs") ||
	fail "duplicate POST unreachable"
[ "$code" = "200" ] || fail "duplicate POST = HTTP $code, want 200 (body: $(cat "$dir/dup.json"))"
grep -q '"deduped": true' "$dir/dup.json" ||
	fail "duplicate submit not deduped: $(cat "$dir/dup.json")"
curl -fsS "http://$addr/metrics" | grep '^valuespec_jobs_dedup_hits_total' |
	grep -qv ' 0$' || fail "/metrics jobs_dedup_hits_total did not increment"
echo "jobs_smoke: duplicate submit deduped from the result store"

# --- equivalence: remote sweep results match a local simulation -----------
"$sweep" -fig4 -quick -scale 2 -out "$dir/local" >"$dir/local.log" 2>&1 ||
	fail "local vsweep run failed: $(cat "$dir/local.log")"
"$sweep" -fig4 -quick -scale 2 -submit "http://$addr" -out "$dir/remote" >"$dir/remote.log" 2>&1 ||
	fail "vsweep -submit run failed: $(cat "$dir/remote.log")"
cmp -s "$dir/local/fig4.csv" "$dir/remote/fig4.csv" ||
	fail "remote fig4.csv differs from local run"
echo "jobs_smoke: vsweep -submit results byte-identical to local run"

stop_daemon
trap - EXIT INT TERM
echo "jobs_smoke: OK (durable restart + dedup + remote/local equivalence)"

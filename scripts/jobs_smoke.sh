#!/bin/sh
# Smoke-test the simulation job service end-to-end: stage a job on a vserved
# daemon with no workers, kill the daemon, restart it with workers and watch
# the job recover and complete (durability), re-submit the same spec and
# require a dedup hit answered from the result store, then run a real
# vsweep -submit sweep and diff its CSV against a locally simulated run
# (byte-identical results). Nonzero exit on any failure.
#
# Usage: scripts/jobs_smoke.sh [workdir]
set -eu

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
log="$dir/vserved.log"
data="$dir/data"
served="$dir/vserved"
sweep="$dir/vsweep"
pid=

fail() {
	echo "jobs_smoke: FAIL: $*" >&2
	echo "jobs_smoke: ---- daemon log ----" >&2
	cat "$log" >&2 || true
	exit 1
}

# start_daemon <workers>: launch vserved on an ephemeral port against $data
# and set $addr from its serving line, polling against a wall-clock deadline
# (not a fixed iteration count, which conflates slow hosts with hangs).
start_daemon() {
	"$served" -addr 127.0.0.1:0 -data "$data" -workers "$1" >"$log" 2>&1 &
	pid=$!
	addr=
	deadline=$(($(date +%s) + 30))
	while [ -z "$addr" ]; do
		addr=$(sed -n 's|^serving jobs on http://\([^ ]*\).*|\1|p' "$log")
		[ -n "$addr" ] && break
		kill -0 "$pid" 2>/dev/null || fail "vserved exited before serving"
		[ "$(date +%s)" -lt "$deadline" ] || fail "no 'serving jobs' line within 30s"
		sleep 0.1
	done
}

# wait_terminal <id> <outfile> <deadline-epoch>: poll GET /jobs/<id> until the
# job settles; fails on failed/canceled or deadline. Leaves $state set.
wait_terminal() {
	wid=$1
	wout=$2
	wdeadline=$3
	state=
	while :; do
		curl -fsS "http://$addr/jobs/$wid" >"$wout" || fail "GET /jobs/$wid unreachable"
		state=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' "$wout" | head -1)
		case $state in
		done) return 0 ;;
		failed | canceled) fail "$wid finished $state: $(cat "$wout")" ;;
		esac
		[ "$(date +%s)" -lt "$wdeadline" ] || fail "$wid not done before the deadline (state '$state')"
		sleep 0.2
	done
}

stop_daemon() {
	kill "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
	pid=
}

go build -o "$served" ./cmd/vserved
go build -o "$sweep" ./cmd/vsweep
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true' EXIT INT TERM

# --- durability: stage a job with zero workers, restart with workers ------
start_daemon 0
echo "jobs_smoke: daemon (stage-only) at http://$addr"

req='{"name":"smoke","specs":[{"workload":"compress","scale":2}]}'
code=$(curl -s -o "$dir/submit.json" -w '%{http_code}' \
	-X POST -H 'Content-Type: application/json' -d "$req" "http://$addr/jobs") ||
	fail "POST /jobs unreachable"
[ "$code" = "202" ] || fail "POST /jobs = HTTP $code, want 202 (body: $(cat "$dir/submit.json"))"
id=$(sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' "$dir/submit.json" | head -1)
[ -n "$id" ] || fail "no job id in $(cat "$dir/submit.json")"
grep -q '"state": "queued"' "$dir/submit.json" ||
	fail "staged job not queued: $(cat "$dir/submit.json")"

stop_daemon
echo "jobs_smoke: daemon killed with $id pending; restarting with workers"

start_daemon 2
wait_terminal "$id" "$dir/job.json" $(($(date +%s) + 120))
echo "jobs_smoke: $id recovered and completed after restart"

curl -fsS "http://$addr/jobs/$id/result" | grep -q '"stats"' ||
	fail "result JSON missing stats"
curl -fsS "http://$addr/jobs/$id/result?format=csv" | head -1 |
	grep -q '^workload,scale,config' || fail "result CSV missing header"

# --- dedup: the same spec again is answered from the result store ---------
code=$(curl -s -o "$dir/dup.json" -w '%{http_code}' \
	-X POST -H 'Content-Type: application/json' -d "$req" "http://$addr/jobs") ||
	fail "duplicate POST unreachable"
[ "$code" = "200" ] || fail "duplicate POST = HTTP $code, want 200 (body: $(cat "$dir/dup.json"))"
grep -q '"deduped": true' "$dir/dup.json" ||
	fail "duplicate submit not deduped: $(cat "$dir/dup.json")"
curl -fsS "http://$addr/metrics" | grep '^valuespec_jobs_dedup_hits_total' |
	grep -qv ' 0$' || fail "/metrics jobs_dedup_hits_total did not increment"
echo "jobs_smoke: duplicate submit deduped from the result store"

# --- tracing: a fresh job leaves a complete submit->store span timeline ---
# (the recovered job predates this daemon's in-memory span ring, so a newly
# submitted spec is the one that must carry the full lifecycle)
treq='{"name":"smoke-trace","specs":[{"workload":"compress","scale":3}]}'
code=$(curl -s -o "$dir/trace_submit.json" -w '%{http_code}' \
	-X POST -H 'Content-Type: application/json' -d "$treq" "http://$addr/jobs") ||
	fail "trace POST /jobs unreachable"
[ "$code" = "202" ] || fail "trace POST /jobs = HTTP $code (body: $(cat "$dir/trace_submit.json"))"
tid=$(sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' "$dir/trace_submit.json" | head -1)
[ -n "$tid" ] || fail "no job id in $(cat "$dir/trace_submit.json")"
wait_terminal "$tid" "$dir/trace_job.json" $(($(date +%s) + 120))
# The terminal job span lands moments after the state flips; poll briefly.
deadline=$(($(date +%s) + 15))
while :; do
	curl -fsS "http://$addr/jobs/$tid/trace" >"$dir/trace.json" ||
		fail "GET /jobs/$tid/trace unreachable"
	grep -q '"name": "job"' "$dir/trace.json" && break
	[ "$(date +%s)" -lt "$deadline" ] || break
	sleep 0.25
done
for span in submit queue_wait run store job; do
	grep -q "\"name\": \"$span\"" "$dir/trace.json" ||
		fail "trace timeline missing '$span' span: $(cat "$dir/trace.json")"
done
grep -q "\"spec_hash\"" "$dir/trace.json" || fail "trace spans missing spec_hash attr"
curl -fsS "http://$addr/jobs/$tid/trace?format=chrome" | grep -q '"traceEvents"' ||
	fail "chrome trace export missing traceEvents"
curl -fsS "http://$addr/trace?track=$tid" | grep -q '"traceEvents"' ||
	fail "whole-service /trace export missing traceEvents"
curl -fsS "http://$addr/metrics" | grep -q '^valuespec_jobs_e2e_ms_count' ||
	fail "/metrics missing jobs_e2e_ms histogram"
echo "jobs_smoke: $tid has a complete submit->store->job span timeline"

# --- equivalence: remote sweep results match a local simulation -----------
"$sweep" -fig4 -quick -scale 2 -out "$dir/local" >"$dir/local.log" 2>&1 ||
	fail "local vsweep run failed: $(cat "$dir/local.log")"
"$sweep" -fig4 -quick -scale 2 -submit "http://$addr" -out "$dir/remote" >"$dir/remote.log" 2>&1 ||
	fail "vsweep -submit run failed: $(cat "$dir/remote.log")"
cmp -s "$dir/local/fig4.csv" "$dir/remote/fig4.csv" ||
	fail "remote fig4.csv differs from local run"
echo "jobs_smoke: vsweep -submit results byte-identical to local run"

stop_daemon
trap - EXIT INT TERM
echo "jobs_smoke: OK (durable restart + dedup + span timeline + remote/local equivalence)"

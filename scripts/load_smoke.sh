#!/bin/sh
# Smoke-test the load/soak/chaos harness end-to-end:
#
#   1. a >=10s hotkey soak at 500 submissions/sec against a spawned vserved,
#      gated by the checked-in SLO_BASELINE.json (throughput, submit/e2e
#      latency percentiles, dedup rate, exact terminal accounting);
#   2. a chaos pass: vsload SIGKILLs the daemon mid-soak, restarts it over
#      the same data directory, and proves every acknowledged job still
#      terminated exactly once;
#   3. a fleet pass: the daemon runs as a pure coordinator (-workers 0), two
#      spawned "vserved -worker" processes drain it over the lease protocol,
#      and the chaos kill SIGKILLs a *worker* mid-soak — its leases lapse,
#      the coordinator requeues, and the same exactly-once invariants hold;
#   4. the negative legs: an impossible SLO must fail the run, a reconcile of
#      the soak's manifest against the surviving data must pass, and a
#      manifest tampered with a fabricated job must fail (lost-job
#      detection).
#
# Nonzero exit on any failure. Usage: scripts/load_smoke.sh [workdir]
set -eu

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
dir=$(cd "$dir" && pwd)
root=$(pwd)
pid=

fail() {
	echo "load_smoke: FAIL: $*" >&2
	for f in "$dir"/vsload-daemon.log "$dir"/vsload-worker-*.log "$dir"/vserved.log; do
		[ -f "$f" ] && { echo "load_smoke: ---- $f ----" >&2; tail -40 "$f" >&2; }
	done
	exit 1
}

# wait_for <deadline-epoch> <description> <command...>: poll command (quietly)
# until it succeeds or the wall-clock deadline passes.
wait_for() {
	deadline=$1
	what=$2
	shift 2
	while ! "$@" >/dev/null 2>&1; do
		[ "$(date +%s)" -lt "$deadline" ] || fail "timed out waiting for $what"
		sleep 0.2
	done
}

go build -o "$dir/vserved" ./cmd/vserved
go build -o "$dir/vsload" ./cmd/vsload
slo="$root/SLO_BASELINE.json"
[ -f "$slo" ] || fail "SLO_BASELINE.json not found at repo root"

# --- 1. hotkey soak: 10s at 500/s, SLO-gated, manifest kept for later ------
echo "load_smoke: hotkey soak (10s @ 500/s, SLO: $slo)"
# Note: `cmd | tee` would report tee's exit status, so capture via file.
(
	cd "$dir" &&
		./vsload -spawn "$dir/vserved -addr 127.0.0.1:0 -data $dir/soak-data -workers 4" \
			-dist hotkey -hotkeys 8 -rate 500 -duration 10s -conc 8 \
			-slo "$slo" -manifest "$dir/soak.manifest.json" \
			-report "$dir/soak.report.json"
) >"$dir/soak.txt" 2>&1 || { cat "$dir/soak.txt"; fail "hotkey soak violated the SLO or its invariants"; }
cat "$dir/soak.txt"
grep -q 'verdict      OK' "$dir/soak.txt" || fail "soak report has no OK verdict"
grep -q '"entries"' "$dir/soak.manifest.json" || fail "soak left no manifest"
echo "load_smoke: hotkey soak passed the SLO gate"

# --- 2. chaos pass: kill-restart mid-soak, exactly-once across the crash ---
cat >"$dir/chaos.slo.json" <<'EOF'
{
  "note": "chaos leg: exact terminal accounting only (throughput/latency are meaningless across a kill window)",
  "max_failed": 0,
  "max_lost": 0,
  "max_unfinished": 0
}
EOF
echo "load_smoke: chaos soak (uniform, SIGKILL + restart mid-run)"
(
	cd "$dir" &&
		./vsload -spawn "$dir/vserved -addr 127.0.0.1:0 -data $dir/chaos-data -workers 4" \
			-dist uniform -rate 200 -duration 6s -conc 4 -chaos -chaos-at 0.5 \
			-slo "$dir/chaos.slo.json" -report "$dir/chaos.report.json"
) >"$dir/chaos.txt" 2>&1 || { cat "$dir/chaos.txt"; fail "chaos soak lost or double-counted a job"; }
cat "$dir/chaos.txt"
grep -q 'chaos .*kill-restart' "$dir/chaos.txt" || fail "chaos pass never killed the daemon"
grep -q 'verdict      OK' "$dir/chaos.txt" || fail "chaos report has no OK verdict"
echo "load_smoke: exactly-once held across the kill-restart"

# --- 3. fleet pass: remote workers drain, one gets SIGKILLed mid-soak ------
echo "load_smoke: fleet soak (coordinator -workers 0, 2 fleet workers, worker SIGKILL mid-run)"
(
	cd "$dir" &&
		./vsload -spawn "$dir/vserved -addr 127.0.0.1:0 -data $dir/fleet-data -workers 0 -lease-ttl 2s" \
			-fleet-workers 2 -worker-cmd "$dir/vserved -worker -capacity 2" \
			-dist uniform -rate 100 -duration 6s -conc 4 -chaos -chaos-at 0.5 \
			-slo "$dir/chaos.slo.json" -report "$dir/fleet.report.json"
) >"$dir/fleet.txt" 2>&1 || { cat "$dir/fleet.txt"; fail "fleet soak lost or double-counted a job across the worker kill"; }
cat "$dir/fleet.txt"
grep -q 'spawned fleet worker' "$dir/fleet.txt" || fail "fleet pass spawned no workers"
grep -q 'fleet worker reborn' "$dir/fleet.txt" || fail "fleet chaos never killed a worker"
grep -q 'verdict      OK' "$dir/fleet.txt" || fail "fleet report has no OK verdict"
echo "load_smoke: exactly-once held across the worker SIGKILL"

# --- 4a. an impossible SLO must make vsload exit nonzero -------------------
cat >"$dir/impossible.slo.json" <<'EOF'
{
  "note": "deliberately unsatisfiable: proves the SLO gate can fail",
  "min_writes_per_sec": 1000000
}
EOF
if (
	cd "$dir" &&
		./vsload -spawn "$dir/vserved -addr 127.0.0.1:0 -data $dir/neg-data -workers 2" \
			-dist hotkey -count 200 -rate 0 -slo "$dir/impossible.slo.json"
) >"$dir/neg.txt" 2>&1; then
	fail "impossible SLO did not fail the run"
fi
grep -q 'SLO BREACH' "$dir/neg.txt" || fail "impossible SLO failed without a breach line"
echo "load_smoke: impossible SLO correctly exited nonzero"

# --- 4b. reconcile the soak manifest against the surviving data ------------
"$dir/vserved" -addr 127.0.0.1:0 -data "$dir/soak-data" -workers 2 >"$dir/vserved.log" 2>&1 &
pid=$!
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true' EXIT INT TERM
deadline=$(($(date +%s) + 30))
addr=
while [ -z "$addr" ]; do
	addr=$(sed -n 's|^serving jobs on http://\([^ ]*\).*|\1|p' "$dir/vserved.log")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || fail "vserved exited before serving"
	[ "$(date +%s)" -lt "$deadline" ] || fail "no 'serving jobs' line within 30s"
	sleep 0.2
done
wait_for "$deadline" "daemon health" curl -fsS "http://$addr/healthz"

"$dir/vsload" -url "http://$addr" -reconcile -manifest "$dir/soak.manifest.json" \
	-drain-timeout 60s >"$dir/reconcile.txt" 2>&1 ||
	fail "reconcile of the soak manifest failed: $(cat "$dir/reconcile.txt")"
echo "load_smoke: soak manifest reconciled cleanly against the restarted daemon"

# --- 4c. a fabricated manifest entry must be reported as a lost job --------
sed "s/\"entries\": \[/\"entries\": [\n  {\"id\": \"j999999\", \"spec_hash\": \"$(printf '0%.0s' $(seq 1 64))\"},/" \
	"$dir/soak.manifest.json" >"$dir/tampered.manifest.json"
grep -q 'j999999' "$dir/tampered.manifest.json" || fail "manifest tampering did not take"
if "$dir/vsload" -url "http://$addr" -reconcile -manifest "$dir/tampered.manifest.json" \
	-drain-timeout 10s >"$dir/tampered.txt" 2>&1; then
	fail "fabricated job was not detected as lost"
fi
grep -q 'lost' "$dir/tampered.txt" || fail "tampered reconcile failed without a lost-job violation"
echo "load_smoke: fabricated manifest entry correctly detected as a lost job"

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=
trap - EXIT INT TERM
echo "load_smoke: OK (SLO-gated soak + chaos exactly-once + fleet worker-kill + negative legs)"

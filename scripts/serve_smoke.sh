#!/bin/sh
# Smoke-test the live observability server end-to-end: start a quick sweep
# with -serve on an ephemeral port, curl the probes and the Prometheus
# exposition while it runs, and assert the metrics a dashboard would scrape
# are actually there. Nonzero exit on any failure.
#
# Usage: scripts/serve_smoke.sh [workdir]
set -eu

dir=${1:-$(mktemp -d)}
mkdir -p "$dir"
log="$dir/serve_smoke.log"
bin="$dir/vsweep"

fail() {
	echo "serve_smoke: FAIL: $*" >&2
	echo "serve_smoke: ---- sweep log ----" >&2
	cat "$log" >&2 || true
	exit 1
}

go build -o "$bin" ./cmd/vsweep

"$bin" -quick -fig3 -serve 127.0.0.1:0 >"$log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT INT TERM

# The sweep prints its bound address on startup; wait for it.
addr=
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's|^serving observability on http://\([^ ]*\).*|\1|p' "$log")
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || fail "vsweep exited before serving"
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || fail "no 'serving observability' line within 10s"
echo "serve_smoke: server at http://$addr"

health=$(curl -fsS "http://$addr/healthz") || fail "/healthz unreachable"
[ "$health" = "ok" ] || fail "/healthz said '$health', want 'ok'"

curl -fsS "http://$addr/readyz" >/dev/null || fail "/readyz not 200"

metrics=$(curl -fsS "http://$addr/metrics") || fail "/metrics unreachable"
for want in \
	valuespec_retired_total \
	valuespec_sweep_specs_total \
	'valuespec_sweep_spec_cycles_bucket{le="+Inf"}'; do
	case $metrics in
	*"$want"*) ;;
	*) fail "/metrics missing '$want'" ;;
	esac
done

curl -fsS "http://$addr/progress" | grep -q '"specs_total"' ||
	fail "/progress missing specs_total"

curl -fsS "http://$addr/buildz" >"$dir/buildz.json" || fail "/buildz unreachable"
grep -q '"go_version": "go' "$dir/buildz.json" ||
	fail "/buildz missing go_version: $(cat "$dir/buildz.json")"

# The middleware feeds its own scrapes back into the exposition.
curl -fsS "http://$addr/metrics" | grep -q '^valuespec_http_request_us_metrics_count' ||
	fail "/metrics missing http middleware latency histogram"

# Live time-series endpoint: a backfill snapshot with at least the sweep's
# retired-instructions series. The tracker samples on the stream interval,
# so poll until the first tick has landed.
series=
i=0
while [ $i -lt 100 ]; do
	series=$(curl -fsS "http://$addr/series") || fail "/series unreachable"
	case $series in
	*'"retired"'*) break ;;
	esac
	kill -0 "$pid" 2>/dev/null || break
	sleep 0.1
	i=$((i + 1))
done
case $series in
*'"type": "backfill"'* | *'"type":"backfill"'*) ;;
*) fail "/series missing backfill type: $series" ;;
esac
case $series in
*'"retired"'*) ;;
*) fail "/series missing retired series within 10s: $series" ;;
esac

# The dashboard page must be self-contained HTML wired to the SSE stream.
dash=$(curl -fsS "http://$addr/dash") || fail "/dash unreachable"
case $dash in
*'<!DOCTYPE html>'*) ;;
*) fail "/dash not an HTML page" ;;
esac
case $dash in
*'series/stream'*) ;;
*) fail "/dash not wired to series/stream" ;;
esac

# Let the sweep finish so the final summary path runs too.
wait "$pid" || fail "vsweep exited nonzero"
trap - EXIT INT TERM
grep -q "Sweep progress summary" "$log" || fail "no final progress summary"
echo "serve_smoke: OK (/healthz /readyz /metrics /progress /series /dash + summary)"

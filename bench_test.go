// Benchmarks regenerating the paper's tables and figures. Each benchmark
// corresponds to one table or figure of the evaluation (see DESIGN.md's
// experiment index) and reports the paper's metric via b.ReportMetric:
//
//	BenchmarkFig1PipelineExample  cycles per scenario (Fig. 1)
//	BenchmarkTable1               dynamic counts and predicted fraction
//	BenchmarkFig3ModelSpeedup     harmonic-mean speedup per model cell
//	BenchmarkFig4Accuracy         CH/CL/IH/IL breakdown
//	BenchmarkAblation*            the design-space studies of Section 3
//
// Benchmarks run the suite at 1/4 of the default workload scale so the whole
// -bench=. pass stays laptop-friendly; cmd/vsweep runs full scale.
package valuespec_test

import (
	"fmt"
	"strings"
	"testing"

	"valuespec"
	"valuespec/internal/bench"
	"valuespec/internal/bpred"
	"valuespec/internal/core"
	"valuespec/internal/cpu"
	"valuespec/internal/harness"
	"valuespec/internal/mem"
)

// metricName sanitizes a label for b.ReportMetric (no whitespace allowed).
func metricName(format string, args ...interface{}) string {
	return strings.ReplaceAll(fmt.Sprintf(format, args...), " ", "_")
}

// benchWorkloads returns the suite scaled down for benchmarking.
func benchWorkloads(div int) []bench.Workload {
	ws := bench.All()
	for i := range ws {
		ws[i].DefaultScale = max(1, ws[i].DefaultScale/div)
	}
	return ws
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkFig1PipelineExample reproduces Fig. 1: the cycle counts of the
// three-instruction dependence chain under every model and prediction
// outcome.
func BenchmarkFig1PipelineExample(b *testing.B) {
	scenarios := []struct {
		name       string
		model      *core.Model
		mispredict bool
	}{
		{"base", nil, false},
	}
	for _, m := range core.Presets() {
		m := m
		scenarios = append(scenarios,
			struct {
				name       string
				model      *core.Model
				mispredict bool
			}{m.Name + "/correct", &m, false},
			struct {
				name       string
				model      *core.Model
				mispredict bool
			}{m.Name + "/mispredict", &m, true},
		)
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, st, err := harness.Fig1Scenario(sc.model, sc.mispredict)
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkTable1 reproduces Table 1: dynamic instruction counts and the
// fraction of value-predicted (register-writing) instructions.
func BenchmarkTable1(b *testing.B) {
	for _, w := range benchWorkloads(4) {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var c bench.Characteristics
			var err error
			for i := 0; i < b.N; i++ {
				c, err = bench.Characterize(w, w.DefaultScale)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.DynamicInstr), "instrs")
			b.ReportMetric(100*c.PredictedFrac, "predicted%")
		})
	}
}

// BenchmarkFig3ModelSpeedup reproduces Fig. 3: the harmonic-mean speedup of
// the Super, Great and Good models for each configuration and setting.
func BenchmarkFig3ModelSpeedup(b *testing.B) {
	ws := benchWorkloads(4)
	for _, cfg := range cpu.PaperConfigs() {
		cfg := cfg
		b.Run(harness.ConfigName(cfg), func(b *testing.B) {
			var cells []harness.Fig3Cell
			var err error
			for i := 0; i < b.N; i++ {
				cells, err = harness.Fig3([]cpu.Config{cfg}, core.Presets(),
					harness.PaperSettings(), ws, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, c := range cells {
				b.ReportMetric(c.Speedup, fmt.Sprintf("speedup[%s,%s]", c.Setting, c.Model))
			}
		})
	}
}

// BenchmarkFig4Accuracy reproduces Fig. 4: the prediction-accuracy breakdown
// of the Great model with real confidence.
func BenchmarkFig4Accuracy(b *testing.B) {
	ws := benchWorkloads(4)
	for _, cfg := range cpu.PaperConfigs() {
		cfg := cfg
		b.Run(harness.ConfigName(cfg), func(b *testing.B) {
			var cells []harness.Fig4Cell
			var err error
			for i := 0; i < b.N; i++ {
				cells, err = harness.Fig4([]cpu.Config{cfg}, ws, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, c := range cells {
				b.ReportMetric(100*(c.CH+c.CL), fmt.Sprintf("correct%%[%s]", c.Update))
				b.ReportMetric(100*c.IH, fmt.Sprintf("IH%%[%s]", c.Update))
			}
		})
	}
}

// BenchmarkAblationLatency sweeps each latency variable of the Great model —
// the sensitivity study the paper's model exists to enable.
func BenchmarkAblationLatency(b *testing.B) {
	ws := benchWorkloads(8)
	set := harness.Setting{Update: cpu.UpdateImmediate}
	var points []harness.LatencyPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = harness.LatencySensitivity(cpu.Config8x48(), core.Great(), set, ws, 0, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Speedup, fmt.Sprintf("speedup[%s=%d]", p.Variable, p.Value))
	}
}

// BenchmarkAblationVerification compares the four verification schemes of
// Section 3.2.
func BenchmarkAblationVerification(b *testing.B) {
	ws := benchWorkloads(8)
	set := harness.Setting{Update: cpu.UpdateImmediate}
	var rows []harness.SchemeResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.VerificationAblation(cpu.Config8x48(), core.Great(), set, ws, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName("speedup[%s]", r.Scheme))
	}
}

// BenchmarkAblationInvalidation compares selective-parallel, selective-
// hierarchical and complete invalidation (Section 3.1), with always-
// speculate confidence so misspeculations actually occur.
func BenchmarkAblationInvalidation(b *testing.B) {
	ws := benchWorkloads(8)
	set := harness.Setting{Update: cpu.UpdateImmediate}
	var rows []harness.SchemeResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.InvalidationAblation(cpu.Config8x48(), core.Great(), set, ws, 0, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName("speedup[%s]", r.Scheme))
	}
}

// BenchmarkAblationResolution compares valid-only and speculative branch and
// memory resolution (Section 3.2).
func BenchmarkAblationResolution(b *testing.B) {
	ws := benchWorkloads(8)
	set := harness.Setting{Update: cpu.UpdateImmediate}
	var rows []harness.SchemeResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.ResolutionAblation(cpu.Config8x48(), core.Great(), set, ws, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName("speedup[%s]", r.Scheme))
	}
}

// BenchmarkAblationForwarding compares forwarding speculative values against
// holding them back (Section 2.2).
func BenchmarkAblationForwarding(b *testing.B) {
	ws := benchWorkloads(8)
	set := harness.Setting{Update: cpu.UpdateImmediate}
	var rows []harness.SchemeResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.ForwardingAblation(cpu.Config8x48(), core.Great(), set, ws, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName("speedup[%s]", r.Scheme))
	}
}

// BenchmarkAblationPredictors races the paper's FCM against last-value and
// stride prediction.
func BenchmarkAblationPredictors(b *testing.B) {
	ws := benchWorkloads(8)
	set := harness.Setting{Update: cpu.UpdateImmediate}
	var rows []harness.SchemeResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.PredictorAblation(cpu.Config8x48(), core.Great(), set, ws, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName("speedup[%s]", r.Scheme))
	}
}

// BenchmarkAblationConfidence sweeps the resetting-counter width (Section
// 3.6).
func BenchmarkAblationConfidence(b *testing.B) {
	ws := benchWorkloads(8)
	set := harness.Setting{Update: cpu.UpdateImmediate}
	var points []harness.ConfidencePoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = harness.ConfidenceSweep(cpu.Config8x48(), core.Great(), set, ws, 0, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Speedup, fmt.Sprintf("speedup[%dbit]", p.CounterBits))
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// instructions per second for the base machine and the Great model.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := valuespec.WorkloadByName("m88ksim")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, model *valuespec.Model) {
		var retired int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := valuespec.Simulate(valuespec.Spec{
				Workload: w, Scale: 100, Config: valuespec.Config8x48(),
				Model:   model,
				Setting: valuespec.Setting{Update: valuespec.UpdateImmediate},
			})
			if err != nil {
				b.Fatal(err)
			}
			retired += res.Stats.Retired
		}
		b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "instrs/s")
	}
	b.Run("base", func(b *testing.B) { run(b, nil) })
	great := valuespec.Great()
	b.Run("great", func(b *testing.B) { run(b, &great) })
}

// BenchmarkEmulator measures the functional emulator alone.
func BenchmarkEmulator(b *testing.B) {
	w, err := valuespec.WorkloadByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.Build(10)
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		m, err := valuespec.NewMachine(prog)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := m.Next(); !ok {
				break
			}
			n++
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkAblationScaling extends Fig. 3 into a finer width/window ladder.
func BenchmarkAblationScaling(b *testing.B) {
	ws := benchWorkloads(8)
	set := harness.Setting{Update: cpu.UpdateImmediate}
	var points []harness.ScalingPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = harness.ScalingSweep(core.Great(), set, ws, 0, harness.DefaultScalingConfigs())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Speedup, metricName("speedup[%s]", p.Config))
	}
}

// BenchmarkPredictorMicro measures raw predictor lookup+train throughput.
func BenchmarkPredictorMicro(b *testing.B) {
	predictors := []struct {
		name string
		p    valuespec.Predictor
	}{
		{"fcm", valuespec.NewFCM(valuespec.DefaultFCMConfig())},
		{"last-value", valuespec.NewLastValuePredictor(16)},
		{"stride", valuespec.NewStridePredictor(16)},
		{"hybrid", valuespec.NewHybridPredictor(16, valuespec.DefaultFCMConfig())},
	}
	for _, pr := range predictors {
		b.Run(pr.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pc := i & 0x3FF
				_, ck := pr.p.Lookup(pc)
				pr.p.TrainImmediate(pc, ck, int64(i%97))
			}
		})
	}
}

// BenchmarkGshareMicro measures branch-predictor throughput.
func BenchmarkGshareMicro(b *testing.B) {
	g := bpred.Default()
	for i := 0; i < b.N; i++ {
		g.PredictAndUpdate(i&0xFFF, i%3 != 0)
	}
}

// BenchmarkCacheMicro measures cache-access throughput.
func BenchmarkCacheMicro(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	for i := 0; i < b.N; i++ {
		h.Data(uint64(i%100000) * 8)
	}
}

// BenchmarkMicroKernels measures the dataflow-limit demonstration: oracle
// value speculation on a pure dependence chain versus independent work.
func BenchmarkMicroKernels(b *testing.B) {
	kernels := []struct {
		name string
		prog *valuespec.Program
	}{
		{"chain", valuespec.ChainMicro(2000, 12)},
		{"parallel", valuespec.ParallelMicro(2000, 12)},
		{"chase", valuespec.PointerChaseMicro(2000, 64)},
	}
	for _, k := range kernels {
		for _, speculate := range []bool{false, true} {
			name := k.name + "/base"
			if speculate {
				name = k.name + "/oracle"
			}
			b.Run(name, func(b *testing.B) {
				var ipc float64
				for i := 0; i < b.N; i++ {
					m, err := valuespec.NewMachine(k.prog)
					if err != nil {
						b.Fatal(err)
					}
					var opts *valuespec.SpecOptions
					if speculate {
						opts = &valuespec.SpecOptions{
							Enabled:    true,
							Model:      valuespec.Great(),
							Confidence: valuespec.OracleConfidence(),
						}
					}
					p, err := valuespec.NewPipeline(valuespec.Config8x48(), opts, m)
					if err != nil {
						b.Fatal(err)
					}
					st, err := p.Run()
					if err != nil {
						b.Fatal(err)
					}
					ipc = st.IPC()
				}
				b.ReportMetric(ipc, "IPC")
			})
		}
	}
}

// Package valuespec is a library-level reproduction of "Modeling Value
// Speculation" (Sazeides, HPCA 2002).
//
// The paper's contribution is a formal model — model variables plus latency
// variables — for describing how value speculation manifests in a
// dynamically-scheduled microarchitecture. This module implements that model
// (internal/core), a full out-of-order superscalar timing simulator that
// consumes it (internal/cpu), the substrates the paper's evaluation depends
// on (ISA, emulator, caches, branch and value predictors, confidence
// estimation), a synthetic SPECint95-analog workload suite, and harnesses
// that regenerate every table and figure of the evaluation.
//
// This package is the public facade: it re-exports the stable API so
// downstream users need a single import.
//
// # Quick start
//
//	w, _ := valuespec.WorkloadByName("compress")
//	model := valuespec.Great()
//	res, err := valuespec.Simulate(valuespec.Spec{
//		Workload: w,
//		Config:   valuespec.Config8x48(),
//		Model:    &model,
//		Setting:  valuespec.Setting{Update: valuespec.UpdateImmediate},
//	})
//	if err != nil { ... }
//	fmt.Printf("IPC %.3f\n", res.IPC())
//
// Compare against the base processor by passing a nil Model. See the
// examples directory for complete programs, and DESIGN.md for the mapping
// from the paper's tables and figures to the harness entry points.
package valuespec

import (
	"valuespec/internal/bench"
	"valuespec/internal/confidence"
	"valuespec/internal/core"
	"valuespec/internal/cpu"
	"valuespec/internal/emu"
	"valuespec/internal/harness"
	"valuespec/internal/program"
	"valuespec/internal/trace"
	"valuespec/internal/vpred"
)

// The speculative-execution model (the paper's Section 4).
type (
	// Model is a complete speculative-execution model: model variables plus
	// latency variables.
	Model = core.Model
	// Latencies are the paper's latency variables, in cycles.
	Latencies = core.Latencies
	// ValueState is the four-state operand readiness introduced by value
	// speculation.
	ValueState = core.ValueState
	// VerificationScheme selects how validity propagates to successors.
	VerificationScheme = core.VerificationScheme
	// InvalidationScheme selects how mispredictions reach successors.
	InvalidationScheme = core.InvalidationScheme
	// ResolutionPolicy selects speculative or valid-only resolution for
	// branches and memory instructions.
	ResolutionPolicy = core.ResolutionPolicy
	// WakeupPolicy selects when nullified instructions wake up again.
	WakeupPolicy = core.WakeupPolicy
	// SelectionPolicy selects how issue slots are granted.
	SelectionPolicy = core.SelectionPolicy
)

// Value states.
const (
	StateInvalid     = core.StateInvalid
	StatePredicted   = core.StatePredicted
	StateSpeculative = core.StateSpeculative
	StateValid       = core.StateValid
)

// Verification schemes.
const (
	VerifyParallel     = core.VerifyParallel
	VerifyHierarchical = core.VerifyHierarchical
	VerifyRetirement   = core.VerifyRetirement
	VerifyHybrid       = core.VerifyHybrid
)

// Invalidation schemes.
const (
	InvalidateParallel     = core.InvalidateParallel
	InvalidateHierarchical = core.InvalidateHierarchical
	InvalidateComplete     = core.InvalidateComplete
)

// Resolution policies.
const (
	ResolveValidOnly   = core.ResolveValidOnly
	ResolveSpeculative = core.ResolveSpeculative
)

// Wakeup policies.
const (
	WakeupAnyValue = core.WakeupAnyValue
	WakeupLimited  = core.WakeupLimited
)

// Selection policies.
const (
	SelectNonSpecFirst = core.SelectNonSpecFirst
	SelectOldestFirst  = core.SelectOldestFirst
)

// Super, Great and Good return the paper's three example models
// (Section 4.1), from most to least optimistic.
func Super() Model { return core.Super() }
func Great() Model { return core.Great() }
func Good() Model  { return core.Good() }

// Models returns the paper's example models in optimism order.
func Models() []Model { return core.Presets() }

// ModelByName resolves "super", "great" or "good".
func ModelByName(name string) (Model, error) { return core.PresetByName(name) }

// ModelTable renders the latency variables of the given models in the
// format of the paper's Section 4.1 table.
func ModelTable(models ...Model) string { return core.Table(models...) }

// The simulated processor (the paper's Section 2).
type (
	// Config describes a processor configuration (issue width, window size,
	// cache hierarchy, data-cache ports).
	Config = cpu.Config
	// SpecOptions configures value speculation on a pipeline.
	SpecOptions = cpu.SpecOptions
	// Stats aggregates the measurements of one simulation.
	Stats = cpu.Stats
	// Pipeline is the out-of-order timing simulator.
	Pipeline = cpu.Pipeline
	// UpdateTiming selects immediate (I) or delayed (D) predictor training.
	UpdateTiming = cpu.UpdateTiming
)

// Observability (see docs/OBSERVABILITY.md).
type (
	// Observer receives the pipeline's microarchitectural event stream.
	Observer = cpu.Observer
	// Event is one pipeline event (dispatch, issue, verify, retire, ...).
	Event = cpu.Event
	// EventLog is an Observer retaining every event.
	EventLog = cpu.EventLog
	// RingLog is a bounded Observer overwriting its oldest events.
	RingLog = cpu.RingLog
	// Metrics samples pipeline distributions into an interval time series.
	Metrics = cpu.Metrics
	// TraceRecorder is an Observer producing a Chrome trace-event JSON.
	TraceRecorder = cpu.TraceRecorder
)

// NewRingLog returns an Observer keeping only the newest capacity events.
func NewRingLog(capacity int) *RingLog { return cpu.NewRingLog(capacity) }

// NewMetrics returns a collector sampling every interval cycles into a ring
// of up to capacity snapshots (capacity <= 0 retains all).
func NewMetrics(interval int64, capacity int) *Metrics {
	return cpu.NewMetrics(interval, capacity)
}

// NewTraceRecorder returns an Observer that records a Chrome trace.
func NewTraceRecorder() *TraceRecorder { return cpu.NewTraceRecorder() }

// Tee fans one pipeline's events out to several observers.
func Tee(obs ...Observer) Observer { return cpu.Tee(obs...) }

// Update timings.
const (
	UpdateImmediate = cpu.UpdateImmediate
	UpdateDelayed   = cpu.UpdateDelayed
)

// Config4x24, Config8x48 and Config16x96 return the paper's processor
// configurations (issue width / window size).
func Config4x24() Config  { return cpu.Config4x24() }
func Config8x48() Config  { return cpu.Config8x48() }
func Config16x96() Config { return cpu.Config16x96() }

// PaperConfigs returns the paper's three configurations in order.
func PaperConfigs() []Config { return cpu.PaperConfigs() }

// NewPipeline builds a pipeline simulating the instruction stream src under
// cfg; nil spec simulates the base processor.
func NewPipeline(cfg Config, spec *SpecOptions, src trace.Source) (*Pipeline, error) {
	return cpu.New(cfg, spec, src)
}

// Programs, emulation and workloads.
type (
	// Program is an executable for the simulated machine.
	Program = program.Program
	// ProgramBuilder assembles programs with symbolic labels.
	ProgramBuilder = program.Builder
	// Machine is the functional emulator.
	Machine = emu.Machine
	// Record is one dynamic instruction of a trace.
	Record = trace.Record
	// TraceSource produces dynamic instruction streams.
	TraceSource = trace.Source
	// Workload is one benchmark of the synthetic SPECint95-analog suite.
	Workload = bench.Workload
)

// NewProgramBuilder returns an empty program builder.
func NewProgramBuilder(name string) *ProgramBuilder { return program.NewBuilder(name) }

// Assemble parses assembly text into a Program (see internal/program for
// the syntax).
func Assemble(src string) (*Program, error) { return program.Assemble(src) }

// NewMachine returns a functional emulator for p; the machine implements
// TraceSource and can drive a Pipeline directly.
func NewMachine(p *Program) (*Machine, error) { return emu.New(p) }

// Workloads returns the benchmark suite in the paper's Table 1 order.
func Workloads() []Workload { return bench.All() }

// Micro-kernels with one controlled dependence pattern each, for isolating
// model behavior (see internal/bench):

// ChainMicro builds a serial-dependence-chain kernel.
func ChainMicro(iterations, depth int) *Program { return bench.ChainMicro(iterations, depth) }

// ParallelMicro builds an independent-operations kernel.
func ParallelMicro(iterations, width int) *Program { return bench.ParallelMicro(iterations, width) }

// PointerChaseMicro builds a linked-list-walk kernel.
func PointerChaseMicro(steps, nodes int) *Program { return bench.PointerChaseMicro(steps, nodes) }

// BranchMicro builds a data-dependent-branch kernel with the given period.
func BranchMicro(iterations, period int) *Program { return bench.BranchMicro(iterations, period) }

// WorkloadByName resolves a benchmark by its SPECint95 name.
func WorkloadByName(name string) (Workload, error) { return bench.ByName(name) }

// Predictors and confidence estimation (the paper's Section 5.2).
type (
	// Predictor is the value-predictor interface.
	Predictor = vpred.Predictor
	// ConfidenceEstimator gates speculation on predictions.
	ConfidenceEstimator = confidence.Estimator
	// FCMConfig parameterizes the context-based predictor.
	FCMConfig = vpred.FCMConfig
)

// NewFCM returns the paper's two-level context-based value predictor.
func NewFCM(cfg FCMConfig) Predictor { return vpred.NewFCM(cfg) }

// DefaultFCMConfig returns the paper's 64K/64K, depth-4 configuration.
func DefaultFCMConfig() FCMConfig { return vpred.DefaultFCMConfig() }

// NewLastValuePredictor returns a last-value predictor with 1<<bits entries.
func NewLastValuePredictor(bits uint) Predictor { return vpred.NewLastValue(bits) }

// NewStridePredictor returns a stride predictor with 1<<bits entries.
func NewStridePredictor(bits uint) Predictor { return vpred.NewStride(bits) }

// NewHybridPredictor returns a stride/FCM tournament predictor with 1<<bits
// chooser counters.
func NewHybridPredictor(bits uint, fcmCfg FCMConfig) Predictor {
	return vpred.NewHybrid(bits, fcmCfg)
}

// NewResettingConfidence returns the paper's resetting-counter estimator
// (tableBits=16, counterBits=3 reproduces the paper).
func NewResettingConfidence(tableBits, counterBits uint) ConfidenceEstimator {
	return confidence.NewResetting(tableBits, counterBits)
}

// OracleConfidence speculates exactly on correct predictions.
func OracleConfidence() ConfidenceEstimator { return confidence.Oracle{} }

// AlwaysConfidence speculates on every prediction.
func AlwaysConfidence() ConfidenceEstimator { return confidence.Always{} }

// NeverConfidence disables speculation (base-processor behavior).
func NeverConfidence() ConfidenceEstimator { return confidence.Never{} }

// Experiments (the paper's Section 6).
type (
	// Spec describes one simulation for the experiment harness.
	Spec = harness.Spec
	// Result is the outcome of one simulation.
	Result = harness.Result
	// Setting is a predictor-update x confidence combination (D/R, I/R,
	// D/O, I/O).
	Setting = harness.Setting
	// Fig3Cell is one bar of the paper's Fig. 3.
	Fig3Cell = harness.Fig3Cell
	// Fig4Cell is one stacked bar of the paper's Fig. 4.
	Fig4Cell = harness.Fig4Cell
	// Table1Row is one row of the paper's Table 1.
	Table1Row = harness.Table1Row
)

// Simulate runs one simulation to completion.
func Simulate(spec Spec) (Result, error) { return harness.Simulate(spec) }

// SimulateAll runs specs concurrently, preserving input order.
func SimulateAll(specs []Spec) ([]Result, error) { return harness.SimulateAll(specs) }

// PaperSettings returns D/R, I/R, D/O, I/O in the paper's order.
func PaperSettings() []Setting { return harness.PaperSettings() }

// Table1 regenerates the paper's Table 1 (scale <= 0 selects workload
// defaults).
func Table1(scale int) ([]Table1Row, error) { return harness.Table1(scale) }

// Fig3 regenerates the paper's Fig. 3 sweep.
func Fig3(configs []Config, models []Model, settings []Setting, workloads []Workload, scale int) ([]Fig3Cell, error) {
	return harness.Fig3(configs, models, settings, workloads, scale)
}

// Fig4 regenerates the paper's Fig. 4 accuracy breakdown.
func Fig4(configs []Config, workloads []Workload, scale int) ([]Fig4Cell, error) {
	return harness.Fig4(configs, workloads, scale)
}
